//! The process-count-parity contract, end to end.
//!
//! Training with 1, 2, or 4 worker processes — at 1 or 2 threads per
//! worker, plain or tail-sharded (owner-computes Adam, DESIGN.md §5j),
//! overlap on or off — must produce models bit-identical to the
//! in-process checkpointed trainer, for both entry-loss strategies, over
//! arbitrary tensors. Checkpoints cross modes bit-for-bit in both
//! directions. Also proptests the delta-codec framing layer: arbitrary
//! byte splits decode identically, and truncation/corruption surface as
//! typed errors, never a hang.

use proptest::prelude::*;
use tcss_core::dist::{encode_frame, DistConfig, FrameDecoder, WireError};
use tcss_core::{InitMethod, LossStrategy, TcssConfig, TcssModel, TcssTrainer};
use tcss_sparse::SparseTensor3;

/// The dedicated worker binary of the core crate (built by cargo for
/// integration tests).
fn worker_program() -> &'static str {
    env!("CARGO_BIN_EXE_tcss-dist-worker")
}

fn model_bits(m: &TcssModel) -> Vec<u64> {
    m.u1.as_slice()
        .iter()
        .chain(m.u2.as_slice())
        .chain(m.u3.as_slice())
        .chain(&m.h)
        .map(|v| v.to_bits())
        .collect()
}

#[derive(Debug, Clone)]
struct Case {
    dims: (usize, usize, usize),
    entries: Vec<(usize, usize, usize, f64)>,
    rank: usize,
    seed: u64,
    loss: LossStrategy,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (4usize..9, 4usize..9, 3usize..6).prop_flat_map(|(i, j, k)| {
        (
            proptest::collection::vec((0usize..i, 0usize..j, 0usize..k, 0.5f64..1.5), 0..60),
            2usize..=3,
            0u64..1000,
            0usize..2,
        )
            .prop_map(move |(entries, rank, seed, negsamp)| Case {
                dims: (i, j, k),
                entries,
                rank,
                seed,
                loss: if negsamp == 1 {
                    LossStrategy::NegativeSampling
                } else {
                    LossStrategy::WholeDataRewritten
                },
            })
    })
}

fn trainer_for(case: &Case, workers: Option<usize>) -> TcssTrainer {
    let tensor = SparseTensor3::from_entries(case.dims, case.entries.iter().copied())
        .expect("generated entries are in bounds");
    let cfg = TcssConfig {
        rank: case.rank,
        seed: case.seed,
        loss: case.loss,
        lambda: 0.0,
        hausdorff: tcss_core::HausdorffVariant::None,
        init: InitMethod::Random,
        epochs: 3,
        checkpoint_every: 1,
        num_threads: Some(1),
        workers,
        ..TcssConfig::default()
    };
    TcssTrainer::from_tensor(tensor, cfg)
}

fn dist_cfg(workers: usize, threads: usize) -> DistConfig {
    DistConfig {
        worker_threads: Some(threads),
        ..DistConfig::new(workers, worker_program())
    }
}

fn shard_cfg(workers: usize, threads: usize, overlap: bool) -> DistConfig {
    DistConfig {
        tail_shard: true,
        overlap,
        ..dist_cfg(workers, threads)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 1 ≡ 2 ≡ 4 workers ≡ in-process, bit for bit, for both strategies.
    #[test]
    fn worker_count_never_changes_a_bit(case in case_strategy()) {
        let baseline = trainer_for(&case, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model;
        let want = model_bits(&baseline);
        for workers in [1usize, 2, 4] {
            let report = trainer_for(&case, Some(workers))
                .train_distributed(&dist_cfg(workers, 1), |_| {})
                .unwrap_or_else(|e| panic!("{workers}-worker run failed: {e}"));
            prop_assert_eq!(report.workers, workers);
            prop_assert_eq!(report.respawns, 0);
            prop_assert_eq!(
                &model_bits(&report.report.model), &want,
                "{} workers diverged from the in-process model", workers
            );
        }
    }

    /// Worker-side threading (composing with the TCSS_NUM_THREADS
    /// machinery) is a pure speed knob, exactly like in-process.
    #[test]
    fn worker_threads_never_change_a_bit(case in case_strategy()) {
        let baseline = trainer_for(&case, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model;
        let report = trainer_for(&case, Some(2))
            .train_distributed(&dist_cfg(2, 2), |_| {})
            .expect("2-worker × 2-thread run trains");
        prop_assert_eq!(
            &model_bits(&report.report.model), &model_bits(&baseline),
            "2 workers × 2 threads diverged from the in-process model"
        );
    }

    /// Tail sharding (owner-computes Adam, §5j) is bit-invisible too:
    /// 1 ≡ 2 ≡ 4 tail-sharded workers ≡ in-process, and neither worker
    /// threading nor the overlap knob changes a bit.
    #[test]
    fn tail_sharding_never_changes_a_bit(case in case_strategy()) {
        let baseline = trainer_for(&case, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model;
        let want = model_bits(&baseline);
        for workers in [1usize, 2, 4] {
            let report = trainer_for(&case, Some(workers))
                .train_distributed(&shard_cfg(workers, 1, true), |_| {})
                .unwrap_or_else(|e| panic!("{workers}-worker tail-sharded run failed: {e}"));
            prop_assert_eq!(report.workers, workers);
            prop_assert_eq!(report.respawns, 0);
            prop_assert_eq!(
                &model_bits(&report.report.model), &want,
                "{} tail-sharded workers diverged from the in-process model", workers
            );
        }
        // 2 workers × 2 threads: worker threading stays a pure speed knob
        // under sharding.
        let threaded = trainer_for(&case, Some(2))
            .train_distributed(&shard_cfg(2, 2, true), |_| {})
            .expect("2-worker × 2-thread tail-sharded run trains");
        prop_assert_eq!(
            &model_bits(&threaded.report.model), &want,
            "2 tail-sharded workers × 2 threads diverged from the in-process model"
        );
        // overlap=false serialises the coordinator tail after the relay;
        // same floats in a different wall-clock order.
        let serial_tail = trainer_for(&case, Some(2))
            .train_distributed(&shard_cfg(2, 1, false), |_| {})
            .expect("overlap=false tail-sharded run trains");
        prop_assert_eq!(
            &model_bits(&serial_tail.report.model), &want,
            "overlap=false diverged from the in-process model"
        );
    }
}

// ---------------------------------------------------------------------
// Framing-layer properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any payload sequence, pushed at arbitrary split points, decodes to
    /// exactly the original payloads.
    #[test]
    fn frames_decode_identically_under_arbitrary_splits(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..200), 0..6),
        split_seed in 0u64..u64::MAX,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        // Deterministic pseudo-random split points from split_seed.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut state = split_seed | 1;
        while pos < stream.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let step = 1 + (state >> 33) as usize % 37;
            let end = (pos + step).min(stream.len());
            dec.push(&stream[pos..end]);
            while let Some(f) = dec.next_frame().expect("well-formed stream") {
                got.push(f);
            }
            pos = end;
        }
        dec.finish().expect("no partial frame at EOF");
        prop_assert_eq!(got, payloads);
    }

    /// Truncating a stream at any interior point yields a typed error at
    /// EOF (or earlier), never a hang and never a bogus frame.
    #[test]
    fn truncation_is_always_a_typed_error(
        payload in proptest::collection::vec(0u8..=255, 0..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame(&payload);
        // cut ∈ [1, len-1]: always a strict interior truncation.
        let cut = 1 + ((frame.len() - 2) as f64 * cut_frac) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..cut]);
        match dec.next_frame() {
            Ok(Some(f)) => prop_assert!(false, "decoded a frame from a truncated stream: {f:?}"),
            Ok(None) => {
                let err = dec.finish().expect_err("EOF mid-frame must be typed");
                prop_assert!(matches!(err, WireError::TruncatedEof { .. }), "{}", err);
            }
            // A cut inside the length prefix can legitimately look
            // oversized; that is still a typed error, not a hang.
            Err(e) => prop_assert!(matches!(e, WireError::Oversized { .. }), "{}", e),
        }
    }

    /// Flipping any single byte of a frame is detected: checksum mismatch,
    /// oversized length, or (in the trailer) checksum mismatch again.
    #[test]
    fn single_byte_corruption_is_detected(
        payload in proptest::collection::vec(0u8..=255, 1..100),
        at_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let mut frame = encode_frame(&payload);
        let at = ((frame.len() - 1) as f64 * at_frac) as usize;
        frame[at] ^= mask;
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        let outcome = dec.next_frame();
        match outcome {
            Err(_) => {} // typed: ChecksumMismatch or Oversized
            Ok(Some(f)) => prop_assert!(
                false,
                "corrupted frame decoded as a payload of {} bytes",
                f.len()
            ),
            // A corrupted length prefix can declare a *longer* frame; the
            // decoder then waits for bytes that never arrive — EOF makes
            // it typed.
            Ok(None) => {
                let err = dec.finish().expect_err("partial frame at EOF");
                prop_assert!(matches!(err, WireError::TruncatedEof { .. }), "{}", err);
            }
        }
    }
}

/// The `workers` knob composes with checkpoints: a distributed run's
/// checkpoint resumes bit-identically in a *single-process* run (the
/// fingerprint excludes `workers`, like `num_threads`).
#[test]
fn distributed_checkpoint_resumes_in_process_bitwise() {
    let case = Case {
        dims: (6, 5, 4),
        entries: vec![
            (0, 0, 0, 1.0),
            (1, 2, 3, 1.0),
            (5, 4, 2, 1.0),
            (3, 3, 1, 1.0),
            (2, 1, 0, 1.0),
        ],
        rank: 2,
        seed: 42,
        loss: LossStrategy::WholeDataRewritten,
    };
    let tmp = tempdir("dist_ckpt_interop");
    // Uninterrupted in-process run: 6 epochs.
    let mut uninterrupted = trainer_for(&case, None);
    uninterrupted.config.epochs = 6;
    let want = model_bits(
        &uninterrupted
            .train_with_checkpoints(|_| {})
            .expect("trains")
            .model,
    );
    // Distributed run to epoch 3, checkpointing...
    let mut first = trainer_for(&case, Some(2));
    first.config.epochs = 3;
    first.config.checkpoint_dir = Some(tmp.clone());
    first
        .train_distributed(&dist_cfg(2, 1), |_| {})
        .expect("distributed prefix trains");
    // ...resumed by a plain single-process trainer to epoch 6.
    let mut second = trainer_for(&case, None);
    second.config.epochs = 6;
    second.config.resume_from = Some(tmp.join(tcss_core::CHECKPOINT_FILE));
    let resumed = second
        .train_with_checkpoints(|_| {})
        .expect("in-process resume trains");
    assert_eq!(resumed.start_epoch, 3);
    assert_eq!(model_bits(&resumed.model), want);
    std::fs::remove_dir_all(&tmp).ok();
}

/// Mixed-mode checkpoint interop, direction 1: a **tail-sharded** run's
/// checkpoint (whose Adam moments were gathered from per-worker resident
/// slabs) resumes bit-identically in a plain single-process run. The
/// snapshot gather must therefore be worker-count-independent.
#[test]
fn tail_sharded_checkpoint_resumes_in_process_bitwise() {
    let case = Case {
        dims: (6, 5, 4),
        entries: vec![
            (0, 0, 0, 1.0),
            (1, 2, 3, 1.0),
            (5, 4, 2, 1.0),
            (3, 3, 1, 1.0),
            (2, 1, 0, 1.0),
        ],
        rank: 2,
        seed: 42,
        loss: LossStrategy::WholeDataRewritten,
    };
    let tmp = tempdir("shard_ckpt_to_plain");
    let mut uninterrupted = trainer_for(&case, None);
    uninterrupted.config.epochs = 6;
    let want = model_bits(
        &uninterrupted
            .train_with_checkpoints(|_| {})
            .expect("trains")
            .model,
    );
    // Tail-sharded run to epoch 3, checkpointing...
    let mut first = trainer_for(&case, Some(2));
    first.config.epochs = 3;
    first.config.checkpoint_dir = Some(tmp.clone());
    first
        .train_distributed(&shard_cfg(2, 1, true), |_| {})
        .expect("tail-sharded prefix trains");
    // ...resumed by a plain single-process trainer to epoch 6.
    let mut second = trainer_for(&case, None);
    second.config.epochs = 6;
    second.config.resume_from = Some(tmp.join(tcss_core::CHECKPOINT_FILE));
    let resumed = second
        .train_with_checkpoints(|_| {})
        .expect("in-process resume trains");
    assert_eq!(resumed.start_epoch, 3);
    assert_eq!(model_bits(&resumed.model), want);
    std::fs::remove_dir_all(&tmp).ok();
}

/// Mixed-mode checkpoint interop, direction 2: a plain single-process
/// checkpoint resumes bit-identically under tail sharding — the adopted
/// Adam moments split across resident worker ranges without changing a
/// bit, at a worker count the checkpoint never saw.
#[test]
fn in_process_checkpoint_resumes_tail_sharded_bitwise() {
    let case = Case {
        dims: (6, 5, 4),
        entries: vec![
            (0, 0, 0, 1.0),
            (1, 2, 3, 1.0),
            (5, 4, 2, 1.0),
            (3, 3, 1, 1.0),
            (2, 1, 0, 1.0),
        ],
        rank: 2,
        seed: 43,
        loss: LossStrategy::NegativeSampling,
    };
    let tmp = tempdir("plain_ckpt_to_shard");
    let mut uninterrupted = trainer_for(&case, None);
    uninterrupted.config.epochs = 6;
    let want = model_bits(
        &uninterrupted
            .train_with_checkpoints(|_| {})
            .expect("trains")
            .model,
    );
    // Plain in-process run to epoch 3, checkpointing...
    let mut first = trainer_for(&case, None);
    first.config.epochs = 3;
    first.config.checkpoint_dir = Some(tmp.clone());
    first
        .train_with_checkpoints(|_| {})
        .expect("in-process prefix trains");
    // ...resumed tail-sharded at 3 workers to epoch 6.
    let mut second = trainer_for(&case, Some(3));
    second.config.epochs = 6;
    second.config.resume_from = Some(tmp.join(tcss_core::CHECKPOINT_FILE));
    let resumed = second
        .train_distributed(&shard_cfg(3, 1, true), |_| {})
        .expect("tail-sharded resume trains");
    assert_eq!(resumed.report.start_epoch, 3);
    assert_eq!(model_bits(&resumed.report.model), want);
    std::fs::remove_dir_all(&tmp).ok();
}

/// A worker program that cannot be spawned is a typed error up front.
#[test]
fn unspawnable_worker_program_is_typed() {
    let case = Case {
        dims: (4, 4, 3),
        entries: vec![(0, 0, 0, 1.0)],
        rank: 2,
        seed: 1,
        loss: LossStrategy::WholeDataRewritten,
    };
    let err = trainer_for(&case, Some(1))
        .train_distributed(&DistConfig::new(1, "/nonexistent/worker/binary"), |_| {})
        .expect_err("spawn must fail");
    assert!(err.to_string().contains("spawn"), "{err}");
}

/// A worker program that exits before connecting is a typed error, not a
/// hang.
#[test]
fn instantly_dying_worker_is_typed_not_a_hang() {
    let case = Case {
        dims: (4, 4, 3),
        entries: vec![(0, 0, 0, 1.0)],
        rank: 2,
        seed: 1,
        loss: LossStrategy::WholeDataRewritten,
    };
    let err = trainer_for(&case, Some(1))
        .train_distributed(&DistConfig::new(1, "/bin/false"), |_| {})
        .expect_err("a worker that dies pre-Hello must fail the run");
    assert!(
        err.to_string().contains("exited before connecting"),
        "{err}"
    );
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcss_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
