//! Serial/parallel parity: the deterministic-reduction contract of
//! `tcss_linalg::parallel` promises that thread count is a pure speed knob.
//! These tests pin that promise **bit-for-bit** (`f64::to_bits` equality,
//! not tolerances) for every parallelized kernel in the training path:
//! the rewritten whole-data loss, negative sampling, the social-Hausdorff
//! head, dense matmul/Gram, the implicit mode-Gram matvec, and the whole
//! spectral initializer built on top of them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_core::loss::{negative_sampling_loss_and_grad, rewritten_loss_and_grad, Grads};
use tcss_core::{random_init, spectral_init, HausdorffVariant, SocialHausdorffHead, TcssModel};
use tcss_data::{Granularity, SynthPreset};
use tcss_linalg::{set_num_threads, Matrix, SymOp};
use tcss_sparse::{Mode, ModeGramOp, SparseTensor3};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Exact bit representation of a gradient set, for equality that admits no
/// floating-point wiggle room at all.
fn grads_bits(g: &Grads) -> Vec<u64> {
    g.u1.as_slice()
        .iter()
        .chain(g.u2.as_slice())
        .chain(g.u3.as_slice())
        .chain(&g.h)
        .map(|v| v.to_bits())
        .collect()
}

fn matrix_bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn training_fixture() -> (SparseTensor3, TcssModel) {
    let data = SynthPreset::Gmu5k.generate();
    let tensor = data.tensor_from(&data.checkins, Granularity::Month);
    let (u1, u2, u3) = random_init(tensor.dims(), 5, 17);
    (tensor, TcssModel::new(u1, u2, u3))
}

#[test]
fn rewritten_loss_is_thread_count_independent() {
    let (tensor, model) = training_fixture();
    let mut reference: Option<(u64, Vec<u64>)> = None;
    for threads in THREAD_COUNTS {
        set_num_threads(Some(threads));
        let (loss, grads) = rewritten_loss_and_grad(&model, tensor.entries(), 0.95, 0.05);
        let got = (loss.to_bits(), grads_bits(&grads));
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(
                *want, got,
                "rewritten loss/grads differ at {threads} threads"
            ),
        }
    }
    set_num_threads(None);
}

#[test]
fn negative_sampling_is_thread_count_independent() {
    // The negatives are drawn from per-chunk RNG streams, so the *sampled
    // set* (not just the arithmetic) must be identical across thread counts.
    let (tensor, model) = training_fixture();
    let mut reference: Option<(u64, Vec<u64>)> = None;
    for threads in THREAD_COUNTS {
        set_num_threads(Some(threads));
        let (loss, grads) = negative_sampling_loss_and_grad(&model, &tensor, 0.95, 0.05, 41);
        let got = (loss.to_bits(), grads_bits(&grads));
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(
                *want, got,
                "negative-sampling loss/grads differ at {threads} threads"
            ),
        }
    }
    set_num_threads(None);
}

#[test]
fn hausdorff_head_is_thread_count_independent() {
    let data = SynthPreset::Gmu5k.generate();
    let train: Vec<_> = data.checkins.iter().take(2000).copied().collect();
    let head = SocialHausdorffHead::new(
        &data,
        &train,
        HausdorffVariant::Social,
        Default::default(),
        None,
    );
    let tensor = data.tensor_from(&train, Granularity::Month);
    let (u1, u2, u3) = random_init(tensor.dims(), 4, 9);
    let model = TcssModel::new(u1, u2, u3);
    let mut reference: Option<(u64, Vec<u64>)> = None;
    for threads in THREAD_COUNTS {
        set_num_threads(Some(threads));
        let mut grads = Grads::zeros(&model);
        let loss = head.loss_and_grad(&model, &mut grads, 240.0);
        let got = (loss.to_bits(), grads_bits(&grads));
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(
                *want, got,
                "Hausdorff loss/grads differ at {threads} threads"
            ),
        }
    }
    set_num_threads(None);
}

#[test]
fn dense_kernels_are_thread_count_independent() {
    let mut rng = StdRng::seed_from_u64(5);
    // More rows than one chunk so the parallel path genuinely splits.
    let a = Matrix::from_fn(300, 40, |_, _| rng.gen_range(-1.0..1.0));
    let b = Matrix::from_fn(40, 25, |_, _| rng.gen_range(-1.0..1.0));
    let mut mm_ref: Option<Vec<u64>> = None;
    let mut gram_ref: Option<Vec<u64>> = None;
    for threads in THREAD_COUNTS {
        set_num_threads(Some(threads));
        let mm = matrix_bits(&a.matmul(&b).expect("shapes agree"));
        let gram = matrix_bits(&a.gram());
        match &mm_ref {
            None => mm_ref = Some(mm),
            Some(want) => assert_eq!(*want, mm, "matmul differs at {threads} threads"),
        }
        match &gram_ref {
            None => gram_ref = Some(gram),
            Some(want) => assert_eq!(*want, gram, "gram differs at {threads} threads"),
        }
    }
    set_num_threads(None);
}

#[test]
fn gram_operator_and_spectral_init_are_thread_count_independent() {
    let (tensor, _) = training_fixture();
    let op = ModeGramOp::new(&tensor, Mode::One);
    let n = tensor.dims().0;
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 101.0)
        .collect();
    let mut apply_ref: Option<Vec<u64>> = None;
    let mut init_ref: Option<Vec<u64>> = None;
    for threads in THREAD_COUNTS {
        set_num_threads(Some(threads));
        let mut y = vec![0.0; n];
        op.apply(&x, &mut y);
        let y_bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        match &apply_ref {
            None => apply_ref = Some(y_bits),
            Some(want) => assert_eq!(*want, y_bits, "Gram matvec differs at {threads} threads"),
        }
        let (u1, u2, u3) = spectral_init(&tensor, 6, 13);
        let bits: Vec<u64> = matrix_bits(&u1)
            .into_iter()
            .chain(matrix_bits(&u2))
            .chain(matrix_bits(&u3))
            .collect();
        match &init_ref {
            None => init_ref = Some(bits),
            Some(want) => assert_eq!(*want, bits, "spectral init differs at {threads} threads"),
        }
    }
    set_num_threads(None);
}
