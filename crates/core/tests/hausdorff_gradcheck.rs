//! Finite-difference verification of the hand-derived social-Hausdorff
//! gradients (paper Eqs 9–13) through `tcss_autodiff::check_gradients_fn`.
//!
//! The head's backward pass chains four hand-written rules — probability
//! coupling `p = 1 − Π(1 − X̂)`, the candidate-set normalization of Term 1,
//! the generalized mean `M_α` of Term 2, and the CP-factor backprop — so
//! every parameter coordinate of every factor matrix (and `h`) is checked
//! against central differences at rtol ≤ 1e-5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcss_autodiff::check_gradients_fn;
use tcss_core::loss::Grads;
use tcss_core::{HausdorffVariant, SocialHausdorffHead, TcssModel};
use tcss_data::{Category, CheckIn, Dataset, Poi};
use tcss_geo::{GeoPoint, WeightedHausdorffParams};
use tcss_graph::SocialGraph;

/// Small dataset: 4 users over 6 POIs on a line; 0–1 and 1–2 are friends,
/// user 3 is isolated (exercises the empty-target-set early-out).
fn gradcheck_data() -> (Dataset, Vec<CheckIn>) {
    let pois: Vec<Poi> = (0..6)
        .map(|j| Poi {
            location: GeoPoint::new(0.1 * j as f64, 0.4 * j as f64),
            category: Category::Food,
        })
        .collect();
    let mk = |user, poi, month| CheckIn {
        user,
        poi,
        month,
        week: (month as u16 * 4) as u8,
        hour: 10,
    };
    let checkins = vec![
        mk(0, 0, 0),
        mk(0, 1, 3),
        mk(1, 1, 2),
        mk(1, 2, 6),
        mk(2, 3, 7),
        mk(2, 4, 9),
        mk(3, 5, 11),
    ];
    let data = Dataset {
        name: "gradcheck".into(),
        n_users: 4,
        pois,
        checkins: checkins.clone(),
        social: SocialGraph::from_edges(4, vec![(0, 1), (1, 2)]),
    };
    (data, checkins)
}

/// A model whose scores all lie strictly inside (0, 1), keeping the clamp
/// unsaturated so the analytic gradient equals the true derivative.
fn interior_model(data: &Dataset, seed: u64) -> TcssModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = (data.n_users, data.pois.len(), 12);
    let mut mk = |n: usize| tcss_linalg::Matrix::from_fn(n, 3, |_, _| rng.gen_range(0.2..0.6));
    let u1 = mk(dims.0);
    let u2 = mk(dims.1);
    let u3 = mk(dims.2);
    TcssModel::new(u1, u2, u3)
}

/// Flatten all model parameters into one coordinate vector.
fn flatten(model: &TcssModel) -> Vec<f64> {
    let mut theta = Vec::new();
    theta.extend_from_slice(model.u1.as_slice());
    theta.extend_from_slice(model.u2.as_slice());
    theta.extend_from_slice(model.u3.as_slice());
    theta.extend_from_slice(&model.h);
    theta
}

/// Write a coordinate vector back into the model.
fn unflatten(model: &mut TcssModel, theta: &[f64]) {
    let (n1, n2, n3) = (
        model.u1.as_slice().len(),
        model.u2.as_slice().len(),
        model.u3.as_slice().len(),
    );
    model.u1.as_mut_slice().copy_from_slice(&theta[..n1]);
    model.u2.as_mut_slice().copy_from_slice(&theta[n1..n1 + n2]);
    model
        .u3
        .as_mut_slice()
        .copy_from_slice(&theta[n1 + n2..n1 + n2 + n3]);
    model.h.copy_from_slice(&theta[n1 + n2 + n3..]);
}

/// Run the FD check for one head configuration over every coordinate.
fn check_head(variant: HausdorffVariant, alpha: f64, seed: u64) {
    let (data, train) = gradcheck_data();
    let params = WeightedHausdorffParams {
        alpha,
        ..Default::default()
    };
    let head = SocialHausdorffHead::new(&data, &train, variant, params, None);
    let model = interior_model(&data, seed);

    let mut grads = Grads::zeros(&model);
    let loss = head.loss_and_grad(&model, &mut grads, 1.0);
    assert!(loss.is_finite() && loss > 0.0, "degenerate loss {loss}");
    let analytic = flatten_grads(&grads);

    let mut theta = flatten(&model);
    let mut scratch = model;
    let report = check_gradients_fn(&mut theta, &analytic, 1e-6, |t| {
        unflatten(&mut scratch, t);
        head.loss(&scratch)
    });
    assert!(
        report.max_rel_err < 1e-5 || report.max_abs_err < 1e-7,
        "{variant:?} α={alpha}: FD mismatch {report:?}"
    );
    assert_eq!(report.coords, analytic.len());
}

fn flatten_grads(grads: &Grads) -> Vec<f64> {
    let mut g = Vec::new();
    g.extend_from_slice(grads.u1.as_slice());
    g.extend_from_slice(grads.u2.as_slice());
    g.extend_from_slice(grads.u3.as_slice());
    g.extend_from_slice(&grads.h);
    g
}

#[test]
fn social_head_gradient_alpha_minus_one() {
    // Paper default: α = −1 (harmonic-mean smooth min).
    check_head(HausdorffVariant::Social, -1.0, 33);
}

#[test]
fn social_head_gradient_generalized_mean() {
    // Non-default exponents exercise the full powf chain of M_α
    // (mean_pow^{(1−α)/α} · f^{α−1}), not the α = −1 special case.
    check_head(HausdorffVariant::Social, -2.5, 35);
    check_head(HausdorffVariant::Social, -0.5, 36);
}

#[test]
fn self_hausdorff_head_gradient() {
    check_head(HausdorffVariant::SelfHausdorff, -1.0, 34);
    check_head(HausdorffVariant::SelfHausdorff, -2.0, 37);
}
