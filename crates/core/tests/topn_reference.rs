//! Partial top-`n` selection vs the full-sort reference.
//!
//! `topn::top_n` (the `O(J)` production path behind `recommend` and the
//! serving layer) must reproduce `topn::top_n_full_sort` (the historical
//! stable full sort) *exactly* — including tie order and the degenerate
//! `n = 0` / `n ≥ J` cases. Scores are drawn from a small quantized set so
//! ties are common, not accidental.

use proptest::prelude::*;
use tcss_core::{random_init, topn, TcssModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selection == full sort on tie-heavy score vectors, for every n
    /// from 0 past the vector length.
    #[test]
    fn top_n_matches_full_sort_with_ties(
        // Quantized scores: ≤ 7 distinct values over up to 50 slots
        // guarantee heavy tie pressure.
        levels in proptest::collection::vec(0u8..7, 0..50),
        n_extra in 0usize..4,
    ) {
        let scores: Vec<f64> = levels.iter().map(|&l| l as f64 * 0.25 - 0.5).collect();
        for n in 0..=(scores.len() + n_extra) {
            let got = topn::top_n(&scores, n);
            let want = topn::top_n_full_sort(&scores, n);
            prop_assert_eq!(got.len(), n.min(scores.len()));
            prop_assert_eq!(&got, &want, "n = {}", n);
        }
    }

    /// The pair ordering contract holds on the output: descending score,
    /// ascending index on ties.
    #[test]
    fn top_n_output_is_rank_ordered(
        levels in proptest::collection::vec(0u8..5, 1..40),
        n in 0usize..45,
    ) {
        let scores: Vec<f64> = levels.iter().map(|&l| l as f64).collect();
        let got = topn::top_n(&scores, n);
        for pair in got.windows(2) {
            prop_assert!(
                topn::rank_order(pair[0], pair[1]).is_lt(),
                "{:?} before {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}

#[test]
fn degenerate_n_edge_cases() {
    let scores = [0.25, 1.0, 1.0, -0.5];
    assert!(topn::top_n(&scores, 0).is_empty());
    assert!(topn::top_n_full_sort(&scores, 0).is_empty());
    // n == J and n > J both return the full ranking.
    let full = vec![(1, 1.0), (2, 1.0), (0, 0.25), (3, -0.5)];
    assert_eq!(topn::top_n(&scores, 4), full);
    assert_eq!(topn::top_n(&scores, 100), full);
    assert_eq!(topn::top_n_full_sort(&scores, 100), full);
    assert!(topn::top_n(&[], 3).is_empty());
}

/// Model-level parity: `recommend` (partial selection) equals
/// `recommend_full_sort` (retained reference) on a factorization whose
/// score vectors contain engineered ties.
#[test]
fn recommend_matches_full_sort_reference() {
    // Duplicate POI embeddings force exact score ties.
    let (u1, mut u2, u3) = random_init((4, 12, 3), 3, 9);
    for j in 0..6 {
        let dup = u2.row(j).to_vec();
        u2.row_mut(j + 6).copy_from_slice(&dup);
    }
    let model = TcssModel::new(u1, u2, u3);
    for user in 0..4 {
        for time in 0..3 {
            for n in [0usize, 1, 5, 12, 20] {
                assert_eq!(
                    model.recommend(user, time, n),
                    model.recommend_full_sort(user, time, n),
                    "user {user} time {time} n {n}"
                );
            }
        }
    }
}
