//! Recovery-path proofs for the fault-tolerant training runtime.
//!
//! Every test here drives a *real* failure through
//! `TcssTrainer::train_with_faults` (see `tcss_core::fault`) and asserts
//! the documented recovery behaviour:
//!
//! * kill-and-resume reproduces an uninterrupted run **bit-for-bit**, at
//!   1 and 2 worker threads (extending the PR 1 determinism contract);
//! * poisoned (NaN) gradients trigger rollback + learning-rate backoff
//!   and the run still completes with finite loss;
//! * a watchdog that keeps firing exhausts its bounded retries and
//!   surfaces `TrainError::Diverged` instead of looping or emitting
//!   garbage factors;
//! * truncated or bit-flipped checkpoint files are detected at resume,
//!   never loaded as silently wrong state.

use std::path::{Path, PathBuf};
use tcss_core::fault::{flip_byte, truncate_file};
use tcss_core::{FaultPlan, TcssConfig, TcssModel, TcssTrainer, TrainError, CHECKPOINT_FILE};
use tcss_data::{train_test_split, Dataset, Granularity, SynthPreset};

fn model_bits(m: &TcssModel) -> Vec<u64> {
    m.u1.as_slice()
        .iter()
        .chain(m.u2.as_slice())
        .chain(m.u3.as_slice())
        .chain(&m.h)
        .map(|v| v.to_bits())
        .collect()
}

fn fixture() -> (Dataset, Vec<tcss_data::CheckIn>) {
    let data = SynthPreset::Gmu5k.generate();
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 1);
    (data, split.train)
}

/// A fast config that still exercises both loss heads and checkpoints at
/// an awkward cadence (12 epochs, snapshots every 5 → the crash point is
/// never on a snapshot boundary).
fn small_config() -> TcssConfig {
    TcssConfig {
        epochs: 12,
        rank: 4,
        checkpoint_every: 5,
        ..TcssConfig::default()
    }
}

fn trainer(data: &Dataset, train: &[tcss_data::CheckIn], cfg: TcssConfig) -> TcssTrainer {
    TcssTrainer::new(data, train, Granularity::Month, cfg)
}

fn unique_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tcss_fault_injection").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

// -----------------------------------------------------------------------
// Kill-and-resume parity
// -----------------------------------------------------------------------

#[test]
fn kill_and_resume_is_bitwise_identical_at_1_and_2_threads() {
    let (data, train) = fixture();
    for threads in [1usize, 2] {
        let dir = unique_dir(&format!("resume_parity_t{threads}"));
        let base = TcssConfig {
            num_threads: Some(threads),
            ..small_config()
        };

        // Reference: an uninterrupted plain run (no checkpointing at all).
        let uninterrupted = trainer(&data, &train, base.clone()).train(|_, _| {});
        let want = model_bits(&uninterrupted);

        // Kill: same run with on-disk checkpoints, crashed at epoch 7 —
        // between the snapshots at 5 and 10.
        let killed_cfg = TcssConfig {
            checkpoint_dir: Some(dir.clone()),
            ..base.clone()
        };
        let err = trainer(&data, &train, killed_cfg)
            .train_with_faults(&FaultPlan::crash_before_epoch(7), |_| {})
            .expect_err("injected crash must abort the run");
        assert!(
            matches!(err, TrainError::InjectedCrash { epoch: 7 }),
            "unexpected error: {err:?}"
        );
        let ckpt = dir.join(CHECKPOINT_FILE);
        assert!(ckpt.exists(), "crash after epoch 5 must leave a checkpoint");

        // Resume: continue from the checkpoint to completion.
        let resumed_cfg = TcssConfig {
            checkpoint_dir: Some(dir.clone()),
            resume_from: Some(ckpt),
            ..base.clone()
        };
        let report = trainer(&data, &train, resumed_cfg)
            .train_with_checkpoints(|_| {})
            .expect("resume completes");
        assert_eq!(report.start_epoch, 5, "resume must start at the snapshot");
        assert_eq!(report.rollbacks, 0);
        assert_eq!(
            want,
            model_bits(&report.model),
            "killed-and-resumed model differs from uninterrupted run at \
             {threads} thread(s)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_can_extend_epochs_beyond_the_original_run() {
    let (data, train) = fixture();
    let dir = unique_dir("resume_extend");
    let cfg = TcssConfig {
        checkpoint_dir: Some(dir.clone()),
        ..small_config()
    };
    trainer(&data, &train, cfg.clone())
        .train_with_checkpoints(|_| {})
        .expect("first run");
    // Same trajectory config, more epochs: the fingerprint deliberately
    // excludes `epochs`, so this resumes instead of erroring.
    let extended = TcssConfig {
        epochs: 16,
        resume_from: Some(dir.join(CHECKPOINT_FILE)),
        ..cfg
    };
    let report = trainer(&data, &train, extended)
        .train_with_checkpoints(|_| {})
        .expect("extension resumes");
    assert_eq!(report.start_epoch, 12);
    std::fs::remove_dir_all(&dir).ok();
}

// -----------------------------------------------------------------------
// Divergence watchdog
// -----------------------------------------------------------------------

#[test]
fn poisoned_gradients_roll_back_with_lr_backoff_and_finish_finite() {
    let (data, train) = fixture();
    let t = trainer(&data, &train, small_config());
    let mut last_joint = f64::NAN;
    let report = t
        .train_with_faults(&FaultPlan::poison_gradients_at(7), |ctx| {
            last_joint = ctx.l2 + 240.0 * ctx.l1;
        })
        .expect("watchdog must recover from a single poisoned epoch");
    assert_eq!(report.rollbacks, 1, "exactly one rollback expected");
    assert_eq!(
        report.lr_scale, 0.5,
        "one rollback must halve the learning rate"
    );
    assert!(
        last_joint.is_finite(),
        "run must complete with finite loss, got {last_joint}"
    );
    for v in report
        .model
        .u1
        .as_slice()
        .iter()
        .chain(report.model.u2.as_slice())
        .chain(report.model.u3.as_slice())
        .chain(&report.model.h)
    {
        assert!(v.is_finite(), "NaN leaked into the final factors");
    }
}

#[test]
fn watchdog_never_fires_on_a_healthy_run() {
    let (data, train) = fixture();
    let report = trainer(&data, &train, small_config())
        .train_with_checkpoints(|_| {})
        .expect("healthy run");
    assert_eq!(report.rollbacks, 0);
    assert_eq!(report.lr_scale, 1.0);
}

#[test]
fn exhausted_retries_surface_a_typed_divergence_error() {
    let (data, train) = fixture();
    // A threshold below any real gradient norm: every epoch "diverges".
    let cfg = TcssConfig {
        max_grad_norm: 1e-300,
        max_retries: 2,
        ..small_config()
    };
    let err = trainer(&data, &train, cfg)
        .train_with_checkpoints(|_| {})
        .expect_err("must give up after bounded retries");
    match err {
        TrainError::Diverged {
            retries, detail, ..
        } => {
            assert_eq!(retries, 3, "max_retries rollbacks plus the final hit");
            assert!(
                detail.contains("max_grad_norm"),
                "detail should say what tripped: {detail}"
            );
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

// -----------------------------------------------------------------------
// Checkpoint corruption at resume time
// -----------------------------------------------------------------------

/// Produce a valid checkpoint file to corrupt.
fn checkpointed_run(dir: &Path) -> (Dataset, Vec<tcss_data::CheckIn>, TcssConfig) {
    let (data, train) = fixture();
    let cfg = TcssConfig {
        checkpoint_dir: Some(dir.to_path_buf()),
        ..small_config()
    };
    trainer(&data, &train, cfg.clone())
        .train_with_checkpoints(|_| {})
        .expect("seed run");
    (data, train, cfg)
}

#[test]
fn truncated_checkpoint_is_rejected_at_resume() {
    let dir = unique_dir("truncated_ckpt");
    let (data, train, cfg) = checkpointed_run(&dir);
    let ckpt = dir.join(CHECKPOINT_FILE);
    let len = std::fs::metadata(&ckpt).unwrap().len();
    for keep in [0, 1, len / 2, len - 1] {
        truncate_file(&ckpt, keep).unwrap();
        let resumed = TcssConfig {
            resume_from: Some(ckpt.clone()),
            ..cfg.clone()
        };
        let err = trainer(&data, &train, resumed)
            .train_with_checkpoints(|_| {})
            .expect_err("truncated checkpoint must be rejected");
        assert!(
            matches!(err, TrainError::Checkpoint(_)),
            "truncation to {keep}/{len} bytes: expected Checkpoint error, \
             got {err:?}"
        );
        // Restore for the next truncation point.
        trainer(&data, &train, cfg.clone())
            .train_with_checkpoints(|_| {})
            .expect("re-seed");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_checkpoint_is_rejected_at_resume() {
    let dir = unique_dir("flipped_ckpt");
    let (data, train, cfg) = checkpointed_run(&dir);
    let ckpt = dir.join(CHECKPOINT_FILE);
    let len = std::fs::metadata(&ckpt).unwrap().len();
    for offset in [0, len / 4, len / 2, len - 2] {
        flip_byte(&ckpt, offset, 0x08).unwrap();
        let resumed = TcssConfig {
            resume_from: Some(ckpt.clone()),
            ..cfg.clone()
        };
        let err = trainer(&data, &train, resumed)
            .train_with_checkpoints(|_| {})
            .expect_err("bit-flipped checkpoint must be rejected");
        assert!(
            matches!(err, TrainError::Checkpoint(_)),
            "flip at byte {offset}/{len}: expected Checkpoint error, got \
             {err:?}"
        );
        flip_byte(&ckpt, offset, 0x08).unwrap(); // flip back
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_from_a_different_config_is_refused() {
    let dir = unique_dir("fingerprint_mismatch");
    let (data, train, cfg) = checkpointed_run(&dir);
    let other = TcssConfig {
        lambda: 1.0, // different trajectory
        resume_from: Some(dir.join(CHECKPOINT_FILE)),
        ..cfg
    };
    let err = trainer(&data, &train, other)
        .train_with_checkpoints(|_| {})
        .expect_err("fingerprint mismatch must refuse to resume");
    assert!(matches!(err, TrainError::InvalidConfig(_)), "got {err:?}");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_checkpoint_file_is_a_clean_error() {
    let (data, train) = fixture();
    let cfg = TcssConfig {
        resume_from: Some(PathBuf::from("/nonexistent/nowhere.tcssck")),
        ..small_config()
    };
    let err = trainer(&data, &train, cfg)
        .train_with_checkpoints(|_| {})
        .expect_err("missing file must error, not panic");
    assert!(matches!(err, TrainError::Checkpoint(_)), "got {err:?}");
}
