//! Worker-loss recovery: the coordinator survives the death of any single
//! worker, resumes from its last checkpoint, and converges to the exact
//! same bits as an uninterrupted run.
//!
//! Companion to `tests/dist_parity.rs` (the no-failure contract) and
//! `tests/fault_injection.rs` (in-process crash/corruption faults).

use tcss_core::dist::DistConfig;
use tcss_core::{
    DistError, FaultPlan, InitMethod, LossStrategy, TcssConfig, TcssModel, TcssTrainer, TrainError,
};
use tcss_sparse::SparseTensor3;

fn worker_program() -> &'static str {
    env!("CARGO_BIN_EXE_tcss-dist-worker")
}

fn model_bits(m: &TcssModel) -> Vec<u64> {
    m.u1.as_slice()
        .iter()
        .chain(m.u2.as_slice())
        .chain(m.u3.as_slice())
        .chain(&m.h)
        .map(|v| v.to_bits())
        .collect()
}

fn fixture(workers: Option<usize>, checkpoint_dir: Option<std::path::PathBuf>) -> TcssTrainer {
    let dims = (8, 7, 5);
    let entries = [
        (0, 0, 0, 1.0),
        (1, 2, 3, 1.0),
        (7, 6, 4, 1.0),
        (3, 3, 1, 1.0),
        (2, 1, 0, 1.0),
        (5, 4, 2, 1.0),
        (6, 0, 3, 1.0),
        (4, 5, 1, 1.0),
        (0, 6, 2, 1.0),
        (7, 1, 4, 1.0),
    ];
    let tensor = SparseTensor3::from_entries(dims, entries).expect("entries in bounds");
    let cfg = TcssConfig {
        rank: 3,
        seed: 7,
        loss: LossStrategy::WholeDataRewritten,
        lambda: 0.0,
        hausdorff: tcss_core::HausdorffVariant::None,
        init: InitMethod::Random,
        epochs: 6,
        checkpoint_every: 2,
        num_threads: Some(1),
        workers,
        checkpoint_dir,
        ..TcssConfig::default()
    };
    TcssTrainer::from_tensor(tensor, cfg)
}

fn dist_cfg(workers: usize) -> DistConfig {
    DistConfig::new(workers, worker_program())
}

fn shard_cfg(workers: usize) -> DistConfig {
    DistConfig {
        tail_shard: true,
        ..dist_cfg(workers)
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tcss_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kill each worker of a 2-worker fleet in turn, mid-run: the coordinator
/// must detect the loss, respawn, resume from the on-disk checkpoint, and
/// land on bits identical to both the uninterrupted distributed run and
/// the plain in-process run.
#[test]
fn losing_any_single_worker_is_survivable_and_bit_exact() {
    let want = model_bits(
        &fixture(None, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model,
    );
    let undisturbed = fixture(Some(2), None)
        .train_distributed(&dist_cfg(2), |_| {})
        .expect("uninterrupted distributed run trains");
    assert_eq!(model_bits(&undisturbed.report.model), want);

    for victim in 0..2usize {
        let dir = tempdir(&format!("dist_kill_w{victim}"));
        let trainer = fixture(Some(2), Some(dir.clone()));
        // Epoch 4: past the epoch-2 checkpoint, so recovery must actually
        // rewind through the on-disk state, not just restart.
        let plan = FaultPlan::kill_worker_at(4, victim);
        let report = trainer
            .train_distributed_with_faults(&dist_cfg(2), &plan, |_| {})
            .unwrap_or_else(|e| panic!("run with worker {victim} killed failed: {e}"));
        assert!(
            report.respawns >= 1,
            "killing worker {victim} must cost at least one respawn"
        );
        assert_eq!(
            model_bits(&report.report.model),
            want,
            "recovery after losing worker {victim} diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Without a checkpoint dir the coordinator still recovers, from its
/// in-memory rollback snapshot.
#[test]
fn recovery_works_without_on_disk_checkpoints() {
    let want = model_bits(
        &fixture(None, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model,
    );
    let plan = FaultPlan::kill_worker_at(3, 1);
    let report = fixture(Some(2), None)
        .train_distributed_with_faults(&dist_cfg(2), &plan, |_| {})
        .expect("checkpoint-less recovery trains");
    assert!(report.respawns >= 1);
    assert_eq!(model_bits(&report.report.model), want);
}

/// Tail-sharded mode is the harder recovery problem: workers hold
/// resident Adam moments, and the victim dies **mid-exchange** — after
/// the coordinator has already relayed the first of its outbound row-delta
/// frames, so some of its deltas are in flight to their owners (and
/// buffered on peers) when it goes down. Recovery must discard the whole
/// half-finished epoch on every worker (Adopt resets resident state),
/// restore the Adam moments for every owned range from the on-disk
/// checkpoint, and still land on the uninterrupted run's exact bits.
///
/// The final-checkpoint byte comparison is the explicit Adam-state check:
/// the checkpoint serializes the gathered `m`/`v` moments, so identical
/// bytes prove the owned-range restore (not just the model splice) was
/// exact.
#[test]
fn tail_sharded_mid_exchange_kill_is_survivable_and_bit_exact() {
    let want = model_bits(
        &fixture(None, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model,
    );
    // Uninterrupted tail-sharded run, checkpointing, as the byte oracle.
    let clean_dir = tempdir("shard_clean");
    let undisturbed = fixture(Some(2), Some(clean_dir.clone()))
        .train_distributed(&shard_cfg(2), |_| {})
        .expect("uninterrupted tail-sharded run trains");
    assert_eq!(model_bits(&undisturbed.report.model), want);
    let want_ckpt = std::fs::read(clean_dir.join(tcss_core::CHECKPOINT_FILE))
        .expect("uninterrupted run wrote a checkpoint");

    for victim in 0..2usize {
        let dir = tempdir(&format!("shard_kill_w{victim}"));
        let trainer = fixture(Some(2), Some(dir.clone()));
        // Epoch 4: past the epoch-2 checkpoint, so the rollback rewinds
        // through on-disk state — including every worker's owned slice of
        // the Adam moments, re-adopted over the wire.
        let plan = FaultPlan::kill_worker_mid_exchange_at(4, victim);
        let report = trainer
            .train_distributed_with_faults(&shard_cfg(2), &plan, |_| {})
            .unwrap_or_else(|e| panic!("run with worker {victim} killed mid-exchange failed: {e}"));
        assert!(
            report.respawns >= 1,
            "mid-exchange kill of worker {victim} must cost at least one respawn"
        );
        assert_eq!(
            model_bits(&report.report.model),
            want,
            "recovery after losing worker {victim} mid-exchange diverged"
        );
        let got_ckpt = std::fs::read(dir.join(tcss_core::CHECKPOINT_FILE))
            .expect("recovered run wrote a checkpoint");
        assert_eq!(
            got_ckpt, want_ckpt,
            "final checkpoint (model + Adam moments) after recovering worker {victim} \
             differs from the uninterrupted run's"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// Tail-sharded recovery also works without on-disk checkpoints: the
/// coordinator's in-memory rollback snapshot carries the gathered Adam
/// moments, and Adopt redistributes the owned ranges to the respawned
/// fleet.
#[test]
fn tail_sharded_recovery_works_without_on_disk_checkpoints() {
    let want = model_bits(
        &fixture(None, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model,
    );
    let plan = FaultPlan::kill_worker_mid_exchange_at(3, 1);
    let report = fixture(Some(2), None)
        .train_distributed_with_faults(&shard_cfg(2), &plan, |_| {})
        .expect("checkpoint-less tail-sharded recovery trains");
    assert!(report.respawns >= 1);
    assert_eq!(model_bits(&report.report.model), want);
}

/// The plain pre-dispatch kill fault composes with tail sharding too (the
/// victim dies between epochs, before the Step broadcast).
#[test]
fn tail_sharded_pre_dispatch_kill_is_survivable_and_bit_exact() {
    let want = model_bits(
        &fixture(None, None)
            .train_with_checkpoints(|_| {})
            .expect("in-process run trains")
            .model,
    );
    let dir = tempdir("shard_predispatch_kill");
    let plan = FaultPlan::kill_worker_at(4, 0);
    let report = fixture(Some(2), Some(dir.clone()))
        .train_distributed_with_faults(&shard_cfg(2), &plan, |_| {})
        .expect("tail-sharded pre-dispatch recovery trains");
    assert!(report.respawns >= 1);
    assert_eq!(model_bits(&report.report.model), want);
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that dies on *every* respawn exhausts the budget and surfaces
/// as the typed `RespawnBudgetExhausted` error instead of looping forever.
#[test]
fn respawn_budget_exhaustion_is_typed() {
    let trainer = fixture(Some(2), None);
    // Point respawns at a program that exits immediately: the first loss is
    // real (fault-injected), every replacement dies before connecting.
    let dist = DistConfig {
        max_respawns: 0,
        ..dist_cfg(2)
    };
    let plan = FaultPlan::kill_worker_at(2, 0);
    let err = trainer
        .train_distributed_with_faults(&dist, &plan, |_| {})
        .expect_err("a zero respawn budget must fail the run");
    match err {
        TrainError::Dist(DistError::RespawnBudgetExhausted { worker, epoch, .. }) => {
            assert_eq!(worker, 0);
            assert_eq!(epoch, 2);
        }
        other => panic!("expected RespawnBudgetExhausted, got: {other}"),
    }
}
