//! Property tests for on-disk integrity: *any* truncation and *any*
//! single-byte flip of a saved model or checkpoint file must be detected
//! at load time — never parsed into silently wrong state.
//!
//! The guarantee rests on two design choices in `tcss_core::checkpoint`:
//! the FNV-1a trailer covers every preceding byte (each round of
//! `h ← (h ⊕ b)·p` is a bijection in `h` for fixed `b`, so changing one
//! byte always changes the digest), and verification requires the exact
//! `checksum: <hex>\n` framing, so losing even the final newline reads as
//! truncation.

use proptest::prelude::*;
use std::path::PathBuf;
use tcss_core::init::random_init;
use tcss_core::loss::Grads;
use tcss_core::{load_checkpoint, load_model, save_checkpoint, save_model, Checkpoint, TcssModel};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tcss_corruption_props");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn sample_model(seed: u64) -> TcssModel {
    let (u1, u2, u3) = random_init((3, 4, 2), 2, seed);
    let mut model = TcssModel::new(u1, u2, u3);
    model.h = vec![1.25, -0.5];
    model
}

fn pristine_model_bytes(tag: &str, seed: u64) -> Vec<u8> {
    let path = tmp(&format!("pristine_model_{tag}.tcss"));
    save_model(&sample_model(seed), &path).expect("save");
    std::fs::read(&path).expect("read back")
}

fn pristine_checkpoint_bytes(tag: &str, seed: u64) -> Vec<u8> {
    let model = sample_model(seed);
    let ck = Checkpoint {
        epoch: 7,
        adam_t: 7,
        lr_scale: 1.0,
        retries: 0,
        seed,
        fingerprint: 0xfeed_beef_dead_cafe,
        m: Grads::zeros(&model),
        v: Grads::zeros(&model),
        model,
    };
    let path = tmp(&format!("pristine_checkpoint_{tag}.tcssck"));
    save_checkpoint(&ck, &path).expect("save");
    std::fs::read(&path).expect("read back")
}

/// Fractions of the file length, so sampled positions stay valid whatever
/// the exact serialized size turns out to be.
fn corruption_strategy() -> impl Strategy<Value = (u64, f64, f64, u8)> {
    (0u64..u64::MAX, 0.0f64..1.0, 0.0f64..1.0, 1u8..=255)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every proper-prefix truncation of a saved model file errors.
    #[test]
    fn any_model_truncation_is_detected((seed, cut, _, _) in corruption_strategy()) {
        let bytes = pristine_model_bytes("trunc", seed);
        let keep = ((bytes.len() as f64) * cut) as usize; // < len: cut < 1.0
        let path = tmp("truncated_model.tcss");
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let res = load_model(&path);
        prop_assert!(
            res.is_err(),
            "truncation to {keep}/{} bytes loaded successfully",
            bytes.len()
        );
    }

    /// Every single-byte flip of a saved model file errors.
    #[test]
    fn any_model_bit_flip_is_detected((seed, _, at, mask) in corruption_strategy()) {
        let mut bytes = pristine_model_bytes("flip", seed);
        let offset = ((bytes.len() as f64) * at) as usize;
        bytes[offset] ^= mask;
        let path = tmp("flipped_model.tcss");
        std::fs::write(&path, &bytes).unwrap();
        let res = load_model(&path);
        prop_assert!(
            res.is_err(),
            "flip of byte {offset} by {mask:#04x} loaded successfully"
        );
    }

    /// Every proper-prefix truncation of a checkpoint file errors.
    #[test]
    fn any_checkpoint_truncation_is_detected((seed, cut, _, _) in corruption_strategy()) {
        let bytes = pristine_checkpoint_bytes("trunc", seed);
        let keep = ((bytes.len() as f64) * cut) as usize;
        let path = tmp("truncated_ck.tcssck");
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let res = load_checkpoint(&path);
        prop_assert!(
            res.is_err(),
            "truncation to {keep}/{} bytes loaded successfully",
            bytes.len()
        );
    }

    /// Every single-byte flip of a checkpoint file errors.
    #[test]
    fn any_checkpoint_bit_flip_is_detected((seed, _, at, mask) in corruption_strategy()) {
        let mut bytes = pristine_checkpoint_bytes("flip", seed);
        let offset = ((bytes.len() as f64) * at) as usize;
        bytes[offset] ^= mask;
        let path = tmp("flipped_ck.tcssck");
        std::fs::write(&path, &bytes).unwrap();
        let res = load_checkpoint(&path);
        prop_assert!(
            res.is_err(),
            "flip of byte {offset} by {mask:#04x} loaded successfully"
        );
    }
}
