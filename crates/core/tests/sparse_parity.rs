//! Sparse-delta ↔ dense parity for the training hot path.
//!
//! PR 1 pinned thread-count parity for the dense-chunk kernels; this suite
//! pins the stronger claim behind the sparse rewrite: the production path
//! (sparse chunk-local deltas + pooled workspaces) reproduces the retained
//! dense reference implementations **bit-for-bit** (`f64::to_bits`
//! equality, no tolerances) —
//!
//! * property-tested over random tensors/models at 1/2/4 threads for both
//!   entry-loop loss heads, including re-use of a warmed workspace pool;
//! * for the social-Hausdorff head, with and without a candidate-set cap
//!   (the `select_nth_unstable_by` selection path);
//! * end-to-end: whole training runs are thread-count independent, and a
//!   run killed mid-flight and resumed from its checkpoint matches an
//!   uninterrupted run on the pooled-workspace trainer.

use proptest::prelude::*;
use tcss_core::loss::{
    negative_sampling_loss_and_grad_ws, reference, rewritten_loss_and_grad_ws, Grads,
};
use tcss_core::{
    random_init, FaultPlan, HausdorffVariant, SocialHausdorffHead, TcssConfig, TcssModel,
    TcssTrainer, TrainError, TrainWorkspace, CHECKPOINT_FILE,
};
use tcss_data::{train_test_split, Granularity, SynthPreset};
use tcss_linalg::set_num_threads;
use tcss_sparse::SparseTensor3;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn grads_bits(g: &Grads) -> Vec<u64> {
    g.u1.as_slice()
        .iter()
        .chain(g.u2.as_slice())
        .chain(g.u3.as_slice())
        .chain(&g.h)
        .map(|v| v.to_bits())
        .collect()
}

fn model_bits(m: &TcssModel) -> Vec<u64> {
    m.u1.as_slice()
        .iter()
        .chain(m.u2.as_slice())
        .chain(m.u3.as_slice())
        .chain(&m.h)
        .map(|v| v.to_bits())
        .collect()
}

/// Random dims, entries, rank and seed. Dims stay small so 3 thread counts
/// × 2 evaluations per case stay fast; entry counts up to 40 cover empty,
/// single-chunk and duplicate-row cases.
#[allow(clippy::type_complexity)]
fn case_strategy() -> impl Strategy<
    Value = (
        (usize, usize, usize),
        Vec<(usize, usize, usize, f64)>,
        usize,
        u64,
    ),
> {
    (3usize..9, 3usize..9, 3usize..6).prop_flat_map(|(i, j, k)| {
        let r_max = i.min(j).min(k);
        (
            proptest::collection::vec((0..i, 0..j, 0..k, 0.25f64..2.0), 0..40),
            2..=r_max,
            0u64..1000,
        )
            .prop_map(move |(v, r, seed)| ((i, j, k), v, r, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The sparse rewritten-loss path is bitwise identical to the dense
    /// reference at every thread count, on a cold and on a warmed
    /// workspace pool.
    #[test]
    fn sparse_rewritten_loss_matches_dense_reference(
        (dims, raw, rank, seed) in case_strategy()
    ) {
        let t = SparseTensor3::from_entries(dims, raw).expect("in range");
        let (u1, u2, u3) = random_init(dims, rank, seed);
        let model = TcssModel::new(u1, u2, u3);
        set_num_threads(Some(1));
        let (want_l, want_g) =
            reference::rewritten_loss_and_grad_dense(&model, t.entries(), 0.95, 0.05);
        let want = (want_l.to_bits(), grads_bits(&want_g));
        for threads in THREAD_COUNTS {
            set_num_threads(Some(threads));
            let ws = TrainWorkspace::new();
            for round in 0..2 {
                // Round 1 warms the pools; round 2 runs on recycled buffers.
                let mut grads = Grads::zeros(&model);
                let loss =
                    rewritten_loss_and_grad_ws(&model, t.entries(), 0.95, 0.05, &ws, &mut grads);
                prop_assert_eq!(
                    &want,
                    &(loss.to_bits(), grads_bits(&grads)),
                    "rewritten loss diverges at {} threads (round {})",
                    threads,
                    round
                );
            }
        }
        set_num_threads(None);
    }

    /// Same for negative sampling: the per-chunk RNG streams (and hence
    /// the sampled negatives) must be untouched by the sparse rewrite.
    #[test]
    fn sparse_negative_sampling_matches_dense_reference(
        (dims, raw, rank, seed) in case_strategy()
    ) {
        let t = SparseTensor3::from_entries(dims, raw).expect("in range");
        let (u1, u2, u3) = random_init(dims, rank, seed);
        let model = TcssModel::new(u1, u2, u3);
        set_num_threads(Some(1));
        let (want_l, want_g) = reference::negative_sampling_loss_and_grad_dense(
            &model, &t, 0.95, 0.05, seed ^ 0xABCD,
        );
        let want = (want_l.to_bits(), grads_bits(&want_g));
        for threads in THREAD_COUNTS {
            set_num_threads(Some(threads));
            let ws = TrainWorkspace::new();
            for round in 0..2 {
                let mut grads = Grads::zeros(&model);
                let loss = negative_sampling_loss_and_grad_ws(
                    &model, &t, 0.95, 0.05, seed ^ 0xABCD, &ws, &mut grads,
                );
                prop_assert_eq!(
                    &want,
                    &(loss.to_bits(), grads_bits(&grads)),
                    "negative sampling diverges at {} threads (round {})",
                    threads,
                    round
                );
            }
        }
        set_num_threads(None);
    }
}

/// Sparse Hausdorff head == dense reference == sequential, bitwise, at
/// every thread count — with and without the top-`p` candidate cap (the
/// capped run exercises the `select_nth_unstable_by` selection).
#[test]
fn sparse_hausdorff_matches_dense_and_sequential() {
    let data = SynthPreset::Gmu5k.generate();
    let train: Vec<_> = data.checkins.iter().take(2000).copied().collect();
    let tensor = data.tensor_from(&train, Granularity::Month);
    let (u1, u2, u3) = random_init(tensor.dims(), 4, 9);
    let model = TcssModel::new(u1, u2, u3);
    for cap in [None, Some(7)] {
        let head = SocialHausdorffHead::new(
            &data,
            &train,
            HausdorffVariant::Social,
            Default::default(),
            cap,
        );
        // Bitwise baseline: the dense chunked path at 1 thread. (The fully
        // sequential path sums the per-user losses in one chain instead of
        // per-chunk subtotals — a different float association — so it is
        // compared with a tolerance, as the PR 1 parity test always did.)
        set_num_threads(Some(1));
        let mut g_dense1 = Grads::zeros(&model);
        let l_dense1 = head.loss_and_grad_dense(&model, &mut g_dense1, 240.0);
        let want = (l_dense1.to_bits(), grads_bits(&g_dense1));
        let mut g_seq = Grads::zeros(&model);
        let l_seq = head.loss_and_grad_sequential(&model, &mut g_seq, 240.0);
        assert!(
            (l_seq - l_dense1).abs() < 1e-9
                && g_seq.u1.approx_eq(&g_dense1.u1, 1e-9)
                && g_seq.u2.approx_eq(&g_dense1.u2, 1e-9)
                && g_seq.u3.approx_eq(&g_dense1.u3, 1e-9),
            "sequential head diverges from chunked dense (cap {cap:?})"
        );
        for threads in THREAD_COUNTS {
            set_num_threads(Some(threads));
            let mut g_dense = Grads::zeros(&model);
            let l_dense = head.loss_and_grad_dense(&model, &mut g_dense, 240.0);
            assert_eq!(
                want,
                (l_dense.to_bits(), grads_bits(&g_dense)),
                "dense head thread-count parity broken at {threads} threads (cap {cap:?})"
            );
            let ws = TrainWorkspace::new();
            for round in 0..2 {
                let mut g_sparse = Grads::zeros(&model);
                let l_sparse = head.loss_and_grad_ws(&model, &mut g_sparse, 240.0, &ws);
                assert_eq!(
                    want,
                    (l_sparse.to_bits(), grads_bits(&g_sparse)),
                    "sparse head diverges at {threads} threads (cap {cap:?}, round {round})"
                );
            }
        }
    }
    set_num_threads(None);
}

/// Whole training runs on the pooled-workspace trainer are thread-count
/// independent: the workspace pools recycle buffers across many epochs and
/// both loss heads, and none of it may perturb a single bit.
#[test]
fn pooled_trainer_is_thread_count_independent_end_to_end() {
    let data = SynthPreset::Gmu5k.generate();
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 1);
    let mut want: Option<Vec<u64>> = None;
    for threads in THREAD_COUNTS {
        let cfg = TcssConfig {
            epochs: 7,
            rank: 4,
            num_threads: Some(threads),
            ..TcssConfig::default()
        };
        let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, cfg);
        let model = trainer.train(|_, _| {});
        let got = model_bits(&model);
        match &want {
            None => want = Some(got),
            Some(w) => assert_eq!(*w, got, "trained model differs at {threads} threads"),
        }
    }
    set_num_threads(None);
}

/// Kill-and-resume on the pooled-workspace trainer: a checkpoint written
/// before the crash plus a resumed run (fresh pools, cold caches) must
/// land on the exact same model as an uninterrupted run — including at 4
/// threads, where pool recycling order differs run to run.
#[test]
fn pooled_trainer_kill_and_resume_is_bitwise_identical() {
    let data = SynthPreset::Gmu5k.generate();
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 1);
    let dir = std::env::temp_dir().join("tcss_sparse_parity_resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("test dir");
    let base = TcssConfig {
        epochs: 12,
        rank: 4,
        checkpoint_every: 5,
        num_threads: Some(4),
        ..TcssConfig::default()
    };

    let uninterrupted =
        TcssTrainer::new(&data, &split.train, Granularity::Month, base.clone()).train(|_, _| {});
    let want = model_bits(&uninterrupted);

    // Crash at epoch 7 — between the snapshots at 5 and 10.
    let killed_cfg = TcssConfig {
        checkpoint_dir: Some(dir.clone()),
        ..base.clone()
    };
    let err = TcssTrainer::new(&data, &split.train, Granularity::Month, killed_cfg)
        .train_with_faults(&FaultPlan::crash_before_epoch(7), |_| {})
        .expect_err("injected crash must abort the run");
    assert!(matches!(err, TrainError::InjectedCrash { epoch: 7 }));

    let ckpt = dir.join(CHECKPOINT_FILE);
    let resumed_cfg = TcssConfig {
        checkpoint_dir: Some(dir.clone()),
        resume_from: Some(ckpt),
        ..base
    };
    let report = TcssTrainer::new(&data, &split.train, Granularity::Month, resumed_cfg)
        .train_with_checkpoints(|_| {})
        .expect("resume completes");
    assert_eq!(report.start_epoch, 5, "resume must start at the snapshot");
    assert_eq!(
        want,
        model_bits(&report.model),
        "killed-and-resumed pooled trainer diverges from uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
    set_num_threads(None);
}
