//! Lane-boundary parity for the training hot path.
//!
//! `tests/sparse_parity.rs` pins production ↔ dense-reference bitwise
//! equality over *random* shapes; this suite targets the shapes the
//! fixed-lane kernels (`tcss_linalg::kernels`, `LANES = 4`) care about:
//! ranks and dimensions straddling the lane boundary
//! (`r ∈ {1, LANES−1, LANES, LANES+1, 2·LANES, 2·LANES+1}`), where the
//! kernels switch between the all-remainder, exact-lane and
//! main-plus-remainder code paths. Every check is `f64::to_bits` equality
//! at 1/2/4 threads:
//!
//! * both entry-loop loss heads (rewritten least-squares and negative
//!   sampling), production sparse path vs. retained dense reference;
//! * `user_slice_into` (the Hausdorff head's `J·K·r` hot loop) vs. a
//!   verbatim copy of the pre-kernel scalar triple loop, at `K` sizes
//!   straddling the lane boundary too.

use proptest::prelude::*;
use tcss_core::loss::{
    negative_sampling_loss_and_grad_ws, reference, rewritten_loss_and_grad_ws, Grads,
};
use tcss_core::{random_init, SliceScratch, TcssModel, TrainWorkspace};
use tcss_linalg::{set_num_threads, LANES};
use tcss_sparse::SparseTensor3;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Ranks straddling the lane boundary (all ≥ 1 and ≤ the test dims).
const BOUNDARY_RANKS: [usize; 6] = [1, LANES - 1, LANES, LANES + 1, 2 * LANES, 2 * LANES + 1];

fn grads_bits(g: &Grads) -> Vec<u64> {
    g.u1.as_slice()
        .iter()
        .chain(g.u2.as_slice())
        .chain(g.u3.as_slice())
        .chain(&g.h)
        .map(|v| v.to_bits())
        .collect()
}

/// Entries + seed for a fixed-dims tensor; the dims stay at
/// `(9, 10, 2·LANES+1)` so every boundary rank is admissible.
fn case_strategy() -> impl Strategy<Value = (Vec<(usize, usize, usize, f64)>, u64)> {
    (
        proptest::collection::vec(
            (0usize..9, 0usize..10, 0usize..(2 * LANES + 1), 0.25f64..2.0),
            0..48,
        ),
        0u64..1000,
    )
}

const DIMS: (usize, usize, usize) = (9, 10, 2 * LANES + 1);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rewritten loss head at every boundary rank: production sparse path
    /// == dense reference, bitwise, at every thread count.
    #[test]
    fn rewritten_loss_bitwise_at_boundary_ranks((raw, seed) in case_strategy()) {
        let t = SparseTensor3::from_entries(DIMS, raw).expect("in range");
        for rank in BOUNDARY_RANKS {
            let (u1, u2, u3) = random_init(DIMS, rank, seed);
            let model = TcssModel::new(u1, u2, u3);
            set_num_threads(Some(1));
            let (want_l, want_g) =
                reference::rewritten_loss_and_grad_dense(&model, t.entries(), 0.95, 0.05);
            let want = (want_l.to_bits(), grads_bits(&want_g));
            for threads in THREAD_COUNTS {
                set_num_threads(Some(threads));
                let ws = TrainWorkspace::new();
                let mut grads = Grads::zeros(&model);
                let loss =
                    rewritten_loss_and_grad_ws(&model, t.entries(), 0.95, 0.05, &ws, &mut grads);
                prop_assert_eq!(
                    &want,
                    &(loss.to_bits(), grads_bits(&grads)),
                    "rewritten loss diverges at rank {} / {} threads",
                    rank,
                    threads
                );
            }
        }
        set_num_threads(None);
    }

    /// Negative-sampling head at every boundary rank, same contract.
    #[test]
    fn negative_sampling_bitwise_at_boundary_ranks((raw, seed) in case_strategy()) {
        let t = SparseTensor3::from_entries(DIMS, raw).expect("in range");
        for rank in BOUNDARY_RANKS {
            let (u1, u2, u3) = random_init(DIMS, rank, seed);
            let model = TcssModel::new(u1, u2, u3);
            set_num_threads(Some(1));
            let (want_l, want_g) = reference::negative_sampling_loss_and_grad_dense(
                &model, &t, 0.95, 0.05, seed ^ 0x5A5A,
            );
            let want = (want_l.to_bits(), grads_bits(&want_g));
            for threads in THREAD_COUNTS {
                set_num_threads(Some(threads));
                let ws = TrainWorkspace::new();
                let mut grads = Grads::zeros(&model);
                let loss = negative_sampling_loss_and_grad_ws(
                    &model, &t, 0.95, 0.05, seed ^ 0x5A5A, &ws, &mut grads,
                );
                prop_assert_eq!(
                    &want,
                    &(loss.to_bits(), grads_bits(&grads)),
                    "negative sampling diverges at rank {} / {} threads",
                    rank,
                    threads
                );
            }
        }
        set_num_threads(None);
    }
}

/// Verbatim copy of the pre-kernel scalar slice loop `user_slice_into`
/// replaced: `hw = h ⊙ U¹ᵢ` precomputed once, then one left-to-right
/// ascending-`t` accumulation per `(j, k)` element.
fn user_slice_scalar_reference(m: &TcssModel, user: usize) -> Vec<f64> {
    let (_, j_dim, k_dim) = m.dims();
    let r = m.h.len();
    let ui = m.u1.row(user);
    let hw: Vec<f64> = (0..r).map(|t| m.h[t] * ui[t]).collect();
    let mut out = vec![0.0; j_dim * k_dim];
    for j in 0..j_dim {
        let uj = m.u2.row(j);
        for k in 0..k_dim {
            let uk = m.u3.row(k);
            let mut s = 0.0;
            for t in 0..r {
                s += hw[t] * uj[t] * uk[t];
            }
            out[j * k_dim + k] = s;
        }
    }
    out
}

/// `user_slice_into` (transpose + quad/axpy rank-one updates) is
/// bit-for-bit the old scalar triple loop — across lane-boundary ranks
/// *and* lane-boundary `K` widths (the kernels run along `K`), on cold and
/// recycled scratch.
#[test]
fn user_slice_into_matches_scalar_reference_bitwise() {
    let mut scratch = SliceScratch::new();
    let mut out = Vec::new();
    for &k_dim in &[1usize, 3, 4, 5, 8, 9] {
        for &rank in &BOUNDARY_RANKS {
            let dims = (9, 10, 9.max(k_dim));
            let rank = rank.min(dims.2);
            let (u1, u2, mut u3) = random_init(dims, rank, 7 + k_dim as u64);
            // Trim U³ to the target K width (random_init needs K ≥ rank).
            if k_dim < dims.2 {
                u3 = tcss_linalg::Matrix::from_fn(k_dim, rank, |i, j| u3.get(i, j));
            }
            let model = TcssModel::new(u1, u2, u3);
            for user in [0usize, 8] {
                let want: Vec<u64> = user_slice_scalar_reference(&model, user)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                // Reuse scratch/out across calls: pooled buffers must not
                // leak state between users or shapes.
                model.user_slice_into(user, &mut scratch, &mut out);
                let got: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    want, got,
                    "slice diverges at rank {rank}, K {k_dim}, user {user}"
                );
            }
        }
    }
}
