//! Additional op-level tests for the autodiff engine: every primitive op's
//! gradient is finite-difference checked in isolation, plus edge cases the
//! in-module unit tests don't cover.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tcss_autodiff::{check_gradients, ParamSet, Tape, Tensor};

/// Gradcheck a single-op graph `loss = sum(op(x))` for a parameter `x`.
fn check_unary(op: impl Fn(&Tape, tcss_autodiff::Var) -> tcss_autodiff::Var + Copy) {
    let mut rng = StdRng::seed_from_u64(100);
    let mut params = ParamSet::new();
    // Stay away from ReLU's kink at 0 by sampling in ±[0.1, 1.1].
    let init = Tensor::uniform(&[3, 4], 1.0, &mut rng).map(|v| v + 0.1 * v.signum());
    let x = params.add("x", init);
    let report = check_gradients(&mut params, 1e-6, |tape, ps| {
        let xv = tape.param(ps, x);
        let y = op(tape, xv);
        tape.sum(y)
    });
    assert!(report.passes(1e-5), "{report:?}");
}

#[test]
fn gradcheck_each_unary_op() {
    check_unary(|t, x| t.sigmoid(x));
    check_unary(|t, x| t.tanh(x));
    check_unary(|t, x| t.relu(x));
    check_unary(|t, x| t.exp(x));
    check_unary(|t, x| t.square(x));
    check_unary(|t, x| t.scale(x, -2.5));
    check_unary(|t, x| t.add_scalar(x, 3.0));
    check_unary(|t, x| t.reshape(x, &[4, 3]));
    check_unary(|t, x| t.transpose(x));
}

#[test]
fn gradcheck_binary_ops() {
    let mut rng = StdRng::seed_from_u64(101);
    let mut params = ParamSet::new();
    let a = params.add("a", Tensor::uniform(&[2, 3], 1.0, &mut rng));
    let b = params.add("b", Tensor::uniform(&[2, 3], 1.0, &mut rng));
    for which in 0..3 {
        let report = check_gradients(&mut params, 1e-6, |tape, ps| {
            let av = tape.param(ps, a);
            let bv = tape.param(ps, b);
            let y = match which {
                0 => tape.add(av, bv),
                1 => tape.sub(av, bv),
                _ => tape.mul(av, bv),
            };
            tape.sum(y)
        });
        assert!(report.passes(1e-6), "op {which}: {report:?}");
    }
}

#[test]
fn gradcheck_add_row_broadcast() {
    let mut rng = StdRng::seed_from_u64(102);
    let mut params = ParamSet::new();
    let a = params.add("a", Tensor::uniform(&[4, 3], 1.0, &mut rng));
    let bias = params.add("bias", Tensor::uniform(&[3], 1.0, &mut rng));
    let report = check_gradients(&mut params, 1e-6, |tape, ps| {
        let av = tape.param(ps, a);
        let bv = tape.param(ps, bias);
        let y = tape.add_row_broadcast(av, bv);
        let sq = tape.square(y);
        tape.mean(sq)
    });
    assert!(report.passes(1e-6), "{report:?}");
}

#[test]
fn gradcheck_deep_composition() {
    // A 5-op-deep chain exercising grad accumulation through reuse.
    let mut rng = StdRng::seed_from_u64(103);
    let mut params = ParamSet::new();
    let w = params.add("w", Tensor::uniform(&[3, 3], 0.7, &mut rng));
    let report = check_gradients(&mut params, 1e-6, |tape, ps| {
        let wv = tape.param(ps, w);
        let sq = tape.matmul(wv, wv); // w appears twice
        let t = tape.tanh(sq);
        let s = tape.mul(t, wv); // and a third time
        let e = tape.exp(tape.scale(s, 0.3));
        tape.mean(e)
    });
    assert!(report.passes(1e-5), "{report:?}");
}

#[test]
fn mean_of_single_element_equals_identity() {
    let tape = Tape::new();
    let x = tape.constant(Tensor::scalar(4.2));
    let m = tape.mean(x);
    assert_eq!(tape.value(m).item(), 4.2);
    tape.backward(m);
    assert_eq!(tape.grad(x).unwrap().item(), 1.0);
}

#[test]
fn backward_twice_from_different_losses_is_isolated_per_tape() {
    // Two separate tapes over the same parameter accumulate independently.
    let mut params = ParamSet::new();
    let w = params.add("w", Tensor::scalar(2.0));
    for _ in 0..2 {
        let tape = Tape::new();
        let wv = tape.param(&params, w);
        let loss = tape.mul(wv, wv);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut params);
    }
    // dl/dw = 2w = 4, accumulated twice = 8.
    assert_eq!(params.grad(w).item(), 8.0);
}

#[test]
fn gather_empty_index_list() {
    let tape = Tape::new();
    let table = tape.constant(Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]));
    let out = tape.gather_rows(table, &[]);
    assert_eq!(tape.value(out).shape(), &[0, 2]);
}

#[test]
#[should_panic(expected = "out of range")]
fn gather_out_of_range_panics() {
    let tape = Tape::new();
    let table = tape.constant(Tensor::zeros(&[2, 2]));
    let _ = tape.gather_rows(table, &[5]);
}

#[test]
#[should_panic(expected = "single-element loss")]
fn backward_rejects_vector_loss() {
    let tape = Tape::new();
    let x = tape.constant(Tensor::vector(&[1.0, 2.0]));
    tape.backward(x);
}

#[test]
fn row_softmax_extreme_logits_stay_finite() {
    let tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(&[1, 3], vec![1e9, -1e9, 0.0]));
    let s = tape.row_softmax(x);
    let v = tape.value(s);
    assert!(v.data().iter().all(|p| p.is_finite()));
    assert!((v.data()[0] - 1.0).abs() < 1e-12);
    assert!(v.data()[1].abs() < 1e-12);
}

#[test]
fn matmul_chains_match_manual_computation() {
    // (1×2)(2×2)(2×1) as scalar: [1,2]·[[1,2],[3,4]]·[5,6]ᵀ = [7,10]·[5,6]ᵀ = 95.
    let tape = Tape::new();
    let a = tape.constant(Tensor::from_vec(&[1, 2], vec![1.0, 2.0]));
    let b = tape.constant(Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]));
    let c = tape.constant(Tensor::from_vec(&[2, 1], vec![5.0, 6.0]));
    let abc = tape.matmul(tape.matmul(a, b), c);
    assert_eq!(tape.value(abc).item(), 95.0);
}
