//! Reusable layers built on the primitive tape ops.
//!
//! Only the two layers every baseline shares live here (Dense, Embedding);
//! the sequence models in `tcss-baselines` compose primitive ops directly,
//! because their cells (spatial-temporal RNN transitions, STGN's extra
//! gates) are bespoke.

use crate::params::{ParamId, ParamSet};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;

/// A fully-connected layer `y = activation(x · W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix parameter, `in_dim × out_dim`.
    pub w: ParamId,
    /// Bias vector parameter, `[out_dim]`.
    pub b: ParamId,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
}

/// Activation applied by [`Dense::forward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation (affine output).
    Identity,
    /// ReLU.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Dense {
    /// Register a dense layer's parameters (Xavier weights, zero bias).
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.add(format!("{name}.w"), Tensor::xavier(in_dim, out_dim, rng));
        let b = params.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Dense {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Apply the layer to a `batch × in_dim` input.
    pub fn forward(&self, tape: &Tape, params: &ParamSet, x: Var, act: Activation) -> Var {
        let w = tape.param(params, self.w);
        let b = tape.param(params, self.b);
        let xw = tape.matmul(x, w);
        let pre = tape.add_row_broadcast(xw, b);
        match act {
            Activation::Identity => pre,
            Activation::Relu => tape.relu(pre),
            Activation::Sigmoid => tape.sigmoid(pre),
            Activation::Tanh => tape.tanh(pre),
        }
    }
}

/// An embedding table with row lookup.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The `vocab × dim` table parameter.
    pub table: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Register an embedding table initialized uniformly in `[-scale, scale]`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        vocab: usize,
        dim: usize,
        scale: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let table = params.add(name, Tensor::uniform(&[vocab, dim], scale, rng));
        Embedding { table, vocab, dim }
    }

    /// Register an embedding table with externally-provided initial values
    /// (e.g. the spectral initialization of the paper).
    pub fn with_values(params: &mut ParamSet, name: &str, values: Tensor) -> Self {
        assert_eq!(values.shape().len(), 2, "embedding table must be rank 2");
        let vocab = values.shape()[0];
        let dim = values.shape()[1];
        let table = params.add(name, values);
        Embedding { table, vocab, dim }
    }

    /// Look up a batch of rows; output is `indices.len() × dim`.
    pub fn forward(&self, tape: &Tape, params: &ParamSet, indices: &[usize]) -> Var {
        let table = tape.param(params, self.table);
        tape.gather_rows(table, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let layer = Dense::new(&mut params, "fc", 4, 2, &mut rng);
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[5, 4]));
        let y = layer.forward(&tape, &params, x, Activation::Relu);
        assert_eq!(tape.value(y).shape(), &[5, 2]);
    }

    #[test]
    fn dense_learns_linear_map() {
        // Fit y = [x0 + x1] with a 2→1 dense layer.
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ParamSet::new();
        let layer = Dense::new(&mut params, "fc", 2, 1, &mut rng);
        let mut opt = Adam::new(0.05);
        let xs = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Tensor::from_vec(&[4, 1], vec![0., 1., 1., 2.]);
        let mut last = f64::MAX;
        for _ in 0..300 {
            let tape = Tape::new();
            let x = tape.constant(xs.clone());
            let pred = layer.forward(&tape, &params, x, Activation::Identity);
            let loss = tape.mse_loss(pred, &ys);
            last = tape.value(loss).item();
            tape.backward(loss);
            tape.accumulate_param_grads(&mut params);
            opt.step(&mut params);
        }
        assert!(last < 1e-4, "loss {last}");
    }

    #[test]
    fn embedding_lookup_and_training() {
        // Train embeddings so row 0 ≈ [1, 0] and row 1 ≈ [0, 1].
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let emb = Embedding::new(&mut params, "e", 3, 2, 0.1, &mut rng);
        let target = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let tape = Tape::new();
            let rows = emb.forward(&tape, &params, &[0, 1]);
            let loss = tape.mse_loss(rows, &target);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut params);
            opt.step(&mut params);
        }
        let table = params.value(emb.table);
        assert!((table.at(0, 0) - 1.0).abs() < 1e-2);
        assert!((table.at(1, 1) - 1.0).abs() < 1e-2);
        // Row 2 untouched by training: still small.
        assert!(table.at(2, 0).abs() < 0.1);
    }

    #[test]
    fn embedding_with_values_preserves_init() {
        let mut params = ParamSet::new();
        let init = Tensor::from_vec(&[2, 2], vec![9.0, 8.0, 7.0, 6.0]);
        let emb = Embedding::with_values(&mut params, "e", init.clone());
        assert_eq!(params.value(emb.table), &init);
        assert_eq!(emb.vocab, 2);
        assert_eq!(emb.dim, 2);
    }
}
