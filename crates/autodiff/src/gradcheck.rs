//! Finite-difference gradient verification.
//!
//! Every analytic backward rule in this workspace — the tape ops here and
//! the hand-derived TCSS gradients in `tcss-core` — is validated against
//! central finite differences. This module provides the shared checker.

use crate::params::ParamSet;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Result of one gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f64,
    /// Largest relative difference (guarded against tiny denominators).
    pub max_rel_err: f64,
    /// Number of scalar coordinates checked.
    pub coords: usize,
}

impl GradCheckReport {
    /// Whether both error measures are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Check the gradients a model computes for all parameters in `params`.
///
/// `forward` must build a fresh graph on the given tape from the current
/// parameter values and return the scalar loss variable. The checker runs
/// the analytic backward once, then perturbs every parameter coordinate by
/// ±`h` and compares with the central difference.
pub fn check_gradients(
    params: &mut ParamSet,
    h: f64,
    mut forward: impl FnMut(&Tape, &ParamSet) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    params.zero_grads();
    let tape = Tape::new();
    let loss = forward(&tape, params);
    tape.backward(loss);
    tape.accumulate_param_grads(params);
    let analytic: Vec<Tensor> = params.ids().map(|id| params.grad(id).clone()).collect();

    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    let mut coords = 0usize;
    let ids: Vec<_> = params.ids().collect();
    for (slot, id) in ids.into_iter().enumerate() {
        let n = params.value(id).len();
        for c in 0..n {
            let orig = params.value(id).data()[c];
            params.value_mut(id).data_mut()[c] = orig + h;
            let tape_p = Tape::new();
            let lp = forward(&tape_p, params);
            let fp = tape_p.value(lp).item();

            params.value_mut(id).data_mut()[c] = orig - h;
            let tape_m = Tape::new();
            let lm = forward(&tape_m, params);
            let fm = tape_m.value(lm).item();

            params.value_mut(id).data_mut()[c] = orig;
            let numeric = (fp - fm) / (2.0 * h);
            let exact = analytic[slot].data()[c];
            let abs = (numeric - exact).abs();
            let rel = abs / numeric.abs().max(exact.abs()).max(1e-8);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
            coords += 1;
        }
    }
    params.zero_grads();
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        coords,
    }
}

/// Check caller-provided analytic gradients against central finite
/// differences, for losses computed *outside* the tape.
///
/// This is the tape-free counterpart of [`check_gradients`], used by the
/// hand-derived TCSS heads (`tcss-core`'s rewritten loss and social
/// Hausdorff head): `forward` evaluates the scalar loss for the current
/// `theta`, and `analytic` is the full gradient at the unperturbed point,
/// one value per coordinate of `theta`. The same [`GradCheckReport`]
/// accounting (and `passes` tolerance rule) applies.
pub fn check_gradients_fn(
    theta: &mut [f64],
    analytic: &[f64],
    h: f64,
    mut forward: impl FnMut(&[f64]) -> f64,
) -> GradCheckReport {
    assert_eq!(
        theta.len(),
        analytic.len(),
        "analytic gradient must have one entry per parameter coordinate"
    );
    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    for c in 0..theta.len() {
        let orig = theta[c];
        theta[c] = orig + h;
        let fp = forward(theta);
        theta[c] = orig - h;
        let fm = forward(theta);
        theta[c] = orig;
        let numeric = (fp - fm) / (2.0 * h);
        let exact = analytic[c];
        let abs = (numeric - exact).abs();
        let rel = abs / numeric.abs().max(exact.abs()).max(1e-8);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        coords: theta.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradcheck_fn_matches_hand_gradient() {
        // f(x, y) = x²y + y³ → ∇f = (2xy, x² + 3y²).
        let mut theta = [1.3f64, -0.7];
        let (x, y) = (theta[0], theta[1]);
        let analytic = [2.0 * x * y, x * x + 3.0 * y * y];
        let report = check_gradients_fn(&mut theta, &analytic, 1e-6, |t| {
            t[0] * t[0] * t[1] + t[1] * t[1] * t[1]
        });
        assert!(report.passes(1e-7), "{report:?}");
        assert_eq!(report.coords, 2);
        // Parameters restored after perturbation.
        assert_eq!(theta, [1.3, -0.7]);
    }

    #[test]
    fn gradcheck_fn_flags_wrong_gradient() {
        let mut theta = [2.0f64];
        let analytic = [5.0]; // true derivative of x² at 2 is 4
        let report = check_gradients_fn(&mut theta, &analytic, 1e-6, |t| t[0] * t[0]);
        assert!(!report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn gradcheck_simple_polynomial() {
        // loss = w² · 3 + w  → dl/dw = 6w + 1.
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::scalar(1.7));
        let report = check_gradients(&mut params, 1e-5, |tape, ps| {
            let wv = tape.param(ps, w);
            let sq = tape.mul(wv, wv);
            let scaled = tape.scale(sq, 3.0);
            tape.add(scaled, wv)
        });
        assert!(report.passes(1e-6), "{report:?}");
        assert_eq!(report.coords, 1);
    }

    #[test]
    fn gradcheck_mlp_with_all_activations() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut params = ParamSet::new();
        let l1 = Dense::new(&mut params, "l1", 3, 4, &mut rng);
        let l2 = Dense::new(&mut params, "l2", 4, 1, &mut rng);
        let x = Tensor::uniform(&[2, 3], 1.0, &mut rng);
        let t = Tensor::uniform(&[2, 1], 1.0, &mut rng);
        let report = check_gradients(&mut params, 1e-5, |tape, ps| {
            let xv = tape.constant(x.clone());
            let h = l1.forward(tape, ps, xv, Activation::Tanh);
            let y = l2.forward(tape, ps, h, Activation::Identity);
            tape.mse_loss(y, &t)
        });
        assert!(report.passes(1e-5), "{report:?}");
        assert!(report.coords > 15);
    }

    #[test]
    fn gradcheck_softmax_attention_like_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = ParamSet::new();
        let q = params.add("q", Tensor::uniform(&[2, 3], 0.7, &mut rng));
        let k = params.add("k", Tensor::uniform(&[4, 3], 0.7, &mut rng));
        let v = params.add("v", Tensor::uniform(&[4, 2], 0.7, &mut rng));
        let t = Tensor::uniform(&[2, 2], 1.0, &mut rng);
        let report = check_gradients(&mut params, 1e-5, |tape, ps| {
            let qv = tape.param(ps, q);
            let kv = tape.param(ps, k);
            let vv = tape.param(ps, v);
            let kt = tape.transpose(kv);
            let scores = tape.matmul(qv, kt);
            let scaled = tape.scale(scores, 1.0 / (3.0f64).sqrt());
            let attn = tape.row_softmax(scaled);
            let out = tape.matmul(attn, vv);
            tape.mse_loss(out, &t)
        });
        assert!(report.passes(1e-5), "{report:?}");
    }

    #[test]
    fn gradcheck_embedding_gather() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut params = ParamSet::new();
        let table = params.add("e", Tensor::uniform(&[5, 3], 0.5, &mut rng));
        let t = Tensor::uniform(&[3, 3], 0.5, &mut rng);
        let report = check_gradients(&mut params, 1e-5, |tape, ps| {
            let tb = tape.param(ps, table);
            let rows = tape.gather_rows(tb, &[0, 2, 2]);
            tape.mse_loss(rows, &t)
        });
        assert!(report.passes(1e-6), "{report:?}");
    }

    #[test]
    fn gradcheck_bce_and_sigmoid_path() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::uniform(&[3, 1], 0.8, &mut rng));
        let x = Tensor::uniform(&[4, 3], 1.0, &mut rng);
        let t = Tensor::from_vec(&[4, 1], vec![1.0, 0.0, 1.0, 0.0]);
        let report = check_gradients(&mut params, 1e-5, |tape, ps| {
            let wv = tape.param(ps, w);
            let xv = tape.constant(x.clone());
            let logits = tape.matmul(xv, wv);
            tape.bce_with_logits(logits, &t)
        });
        assert!(report.passes(1e-6), "{report:?}");
    }
}
