//! The gradient tape: forward ops record their backward closures; calling
//! [`Tape::backward`] replays them in reverse topological (= insertion)
//! order.
//!
//! Design notes:
//!
//! * A fresh tape is created per training step; persistent state lives in
//!   [`crate::ParamSet`]. This sidesteps graph-reuse bugs entirely.
//! * Backward closures receive *cloned* parent values and return gradient
//!   contributions, which the driver accumulates. Cloning keeps the borrow
//!   structure trivially safe; the tensors involved are small (these are
//!   laptop-scale models), so the cost is negligible against the matmuls.
//! * `Var` is a plain `Copy` index — ergonomic to thread through model code.

use crate::params::{ParamId, ParamSet};
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

type BackwardFn = Box<dyn Fn(&Tensor, &Tensor, &[Tensor]) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    parents: Vec<usize>,
    /// `(out_value, out_grad, parent_values) -> parent grad contributions`.
    backward: Option<BackwardFn>,
}

/// A reverse-mode gradient tape.
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    param_links: RefCell<Vec<(usize, ParamId)>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: RefCell::new(Vec::new()),
            param_links: RefCell::new(Vec::new()),
        }
    }

    fn push(&self, value: Tensor, parents: Vec<usize>, backward: Option<BackwardFn>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            parents,
            backward,
        });
        Var(nodes.len() - 1)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// The current value of a variable (cloned).
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// The gradient of a variable after [`Tape::backward`]; `None` if the
    /// variable did not participate in the loss.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.nodes.borrow()[v.0].grad.clone()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// A constant input (gradients are tracked but never read back).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, vec![], None)
    }

    /// A leaf bound to a persistent parameter: the parameter's current value
    /// is copied in, and [`Tape::accumulate_param_grads`] later adds the
    /// leaf's gradient into `ParamSet::grad`.
    pub fn param(&self, params: &ParamSet, id: ParamId) -> Var {
        let v = self.push(params.value(id).clone(), vec![], None);
        self.param_links.borrow_mut().push((v.0, id));
        v
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn binary_same_shape(
        &self,
        a: Var,
        b: Var,
        f: impl Fn(f64, f64) -> f64,
        backward: BackwardFn,
    ) -> Var {
        let (va, vb) = {
            let nodes = self.nodes.borrow();
            (nodes[a.0].value.clone(), nodes[b.0].value.clone())
        };
        assert_eq!(va.shape(), vb.shape(), "elementwise op shape mismatch");
        let data = va
            .data()
            .iter()
            .zip(vb.data().iter())
            .map(|(&x, &y)| f(x, y))
            .collect();
        let out = Tensor::from_vec(va.shape(), data);
        self.push(out, vec![a.0, b.0], Some(backward))
    }

    /// Elementwise sum `a + b`.
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.binary_same_shape(
            a,
            b,
            |x, y| x + y,
            Box::new(|_out, g, _pv| vec![g.clone(), g.clone()]),
        )
    }

    /// Elementwise difference `a − b`.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.binary_same_shape(
            a,
            b,
            |x, y| x - y,
            Box::new(|_out, g, _pv| vec![g.clone(), g.map(|v| -v)]),
        )
    }

    /// Elementwise (Hadamard) product `a ⊙ b`.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        self.binary_same_shape(
            a,
            b,
            |x, y| x * y,
            Box::new(|_out, g, pv| {
                let ga = Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(pv[1].data().iter())
                        .map(|(&gi, &bi)| gi * bi)
                        .collect(),
                );
                let gb = Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(pv[0].data().iter())
                        .map(|(&gi, &ai)| gi * ai)
                        .collect(),
                );
                vec![ga, gb]
            }),
        )
    }

    /// Scale by a compile-time-known constant.
    pub fn scale(&self, a: Var, c: f64) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        self.push(
            va.map(|v| v * c),
            vec![a.0],
            Some(Box::new(move |_out, g, _pv| vec![g.map(|v| v * c)])),
        )
    }

    /// Add a scalar constant.
    pub fn add_scalar(&self, a: Var, c: f64) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        self.push(
            va.map(|v| v + c),
            vec![a.0],
            Some(Box::new(|_out, g, _pv| vec![g.clone()])),
        )
    }

    /// Broadcast-add a row vector `b` (shape `[n]` or `[1, n]`) to every row
    /// of `a` (shape `[m, n]`). The bias-add of a dense layer.
    pub fn add_row_broadcast(&self, a: Var, b: Var) -> Var {
        let (va, vb) = {
            let nodes = self.nodes.borrow();
            (nodes[a.0].value.clone(), nodes[b.0].value.clone())
        };
        let n = va.cols();
        assert_eq!(vb.len(), n, "broadcast bias length mismatch");
        let m = va.rows();
        let mut data = va.data().to_vec();
        for i in 0..m {
            for j in 0..n {
                data[i * n + j] += vb.data()[j];
            }
        }
        let out = Tensor::from_vec(va.shape(), data);
        let bias_shape = vb.shape().to_vec();
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |_out, g, _pv| {
                let n = g.cols();
                let m = g.rows();
                let mut gb = vec![0.0; n];
                for i in 0..m {
                    for j in 0..n {
                        gb[j] += g.data()[i * n + j];
                    }
                }
                vec![g.clone(), Tensor::from_vec(&bias_shape, gb)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Activations and elementwise functions
    // ------------------------------------------------------------------

    fn unary(&self, a: Var, f: impl Fn(f64) -> f64, backward: BackwardFn) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        self.push(va.map(f), vec![a.0], Some(backward))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| 1.0 / (1.0 + (-x).exp()),
            Box::new(|out, g, _pv| {
                vec![Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(out.data().iter())
                        .map(|(&gi, &s)| gi * s * (1.0 - s))
                        .collect(),
                )]
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        self.unary(
            a,
            f64::tanh,
            Box::new(|out, g, _pv| {
                vec![Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(out.data().iter())
                        .map(|(&gi, &t)| gi * (1.0 - t * t))
                        .collect(),
                )]
            }),
        )
    }

    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x.max(0.0),
            Box::new(|_out, g, pv| {
                vec![Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(pv[0].data().iter())
                        .map(|(&gi, &x)| if x > 0.0 { gi } else { 0.0 })
                        .collect(),
                )]
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        self.unary(
            a,
            f64::exp,
            Box::new(|out, g, _pv| {
                vec![Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(out.data().iter())
                        .map(|(&gi, &e)| gi * e)
                        .collect(),
                )]
            }),
        )
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        self.unary(
            a,
            |x| x * x,
            Box::new(|_out, g, pv| {
                vec![Tensor::from_vec(
                    g.shape(),
                    g.data()
                        .iter()
                        .zip(pv[0].data().iter())
                        .map(|(&gi, &x)| gi * 2.0 * x)
                        .collect(),
                )]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `a (m×k) · b (k×n)`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = {
            let nodes = self.nodes.borrow();
            (nodes[a.0].value.clone(), nodes[b.0].value.clone())
        };
        assert_eq!(va.shape().len(), 2, "matmul lhs must be rank 2");
        assert_eq!(vb.shape().len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (va.shape()[0], va.shape()[1]);
        let (k2, n) = (vb.shape()[0], vb.shape()[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let out = matmul_raw(&va, &vb, m, k, n);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |_out, g, pv| {
                // ga = g · bᵀ ; gb = aᵀ · g
                let ga = matmul_bt(g, &pv[1], m, n, k);
                let gb = matmul_at(&pv[0], g, m, k, n);
                vec![ga, gb]
            })),
        )
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        assert_eq!(va.shape().len(), 2, "transpose requires rank 2");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = va.data()[i * n + j];
            }
        }
        self.push(
            Tensor::from_vec(&[n, m], data),
            vec![a.0],
            Some(Box::new(move |_out, g, _pv| {
                let mut gd = vec![0.0; m * n];
                for j in 0..n {
                    for i in 0..m {
                        gd[i * n + j] = g.data()[j * m + i];
                    }
                }
                vec![Tensor::from_vec(&[m, n], gd)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Reductions and reshapes
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&self, a: Var) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        let shape = va.shape().to_vec();
        let total = va.sum();
        self.push(
            Tensor::scalar(total),
            vec![a.0],
            Some(Box::new(move |_out, g, _pv| {
                vec![Tensor::filled(&shape, g.item())]
            })),
        )
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self, a: Var) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        let n = va.len().max(1);
        let shape = va.shape().to_vec();
        let m = va.sum() / n as f64;
        self.push(
            Tensor::scalar(m),
            vec![a.0],
            Some(Box::new(move |_out, g, _pv| {
                vec![Tensor::filled(&shape, g.item() / n as f64)]
            })),
        )
    }

    /// Reshape (element count must be preserved).
    pub fn reshape(&self, a: Var, shape: &[usize]) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        let old_shape = va.shape().to_vec();
        let out = va.reshaped(shape);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |_out, g, _pv| vec![g.reshaped(&old_shape)])),
        )
    }

    /// Row-wise softmax of a rank-2 tensor.
    pub fn row_softmax(&self, a: Var) -> Var {
        let va = self.nodes.borrow()[a.0].value.clone();
        assert_eq!(va.shape().len(), 2, "row_softmax requires rank 2");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            let row = &va.data()[i * n..(i + 1) * n];
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for j in 0..n {
                let e = (row[j] - max).exp();
                data[i * n + j] = e;
                sum += e;
            }
            for j in 0..n {
                data[i * n + j] /= sum;
            }
        }
        self.push(
            Tensor::from_vec(&[m, n], data),
            vec![a.0],
            Some(Box::new(move |out, g, _pv| {
                // dL/dx_j = s_j (g_j − Σ_k g_k s_k), row-wise.
                let mut gd = vec![0.0; m * n];
                for i in 0..m {
                    let s = &out.data()[i * n..(i + 1) * n];
                    let gr = &g.data()[i * n..(i + 1) * n];
                    let dot: f64 = s.iter().zip(gr.iter()).map(|(&si, &gi)| si * gi).sum();
                    for j in 0..n {
                        gd[i * n + j] = s[j] * (gr[j] - dot);
                    }
                }
                vec![Tensor::from_vec(&[m, n], gd)]
            })),
        )
    }

    /// Concatenate two rank-2 tensors along columns.
    pub fn concat_cols(&self, a: Var, b: Var) -> Var {
        let (va, vb) = {
            let nodes = self.nodes.borrow();
            (nodes[a.0].value.clone(), nodes[b.0].value.clone())
        };
        assert_eq!(va.shape().len(), 2, "concat_cols lhs must be rank 2");
        assert_eq!(vb.shape().len(), 2, "concat_cols rhs must be rank 2");
        let (m, p) = (va.shape()[0], va.shape()[1]);
        let (m2, q) = (vb.shape()[0], vb.shape()[1]);
        assert_eq!(m, m2, "concat_cols row count mismatch");
        let mut data = Vec::with_capacity(m * (p + q));
        for i in 0..m {
            data.extend_from_slice(&va.data()[i * p..(i + 1) * p]);
            data.extend_from_slice(&vb.data()[i * q..(i + 1) * q]);
        }
        self.push(
            Tensor::from_vec(&[m, p + q], data),
            vec![a.0, b.0],
            Some(Box::new(move |_out, g, _pv| {
                let mut ga = vec![0.0; m * p];
                let mut gb = vec![0.0; m * q];
                for i in 0..m {
                    ga[i * p..(i + 1) * p].copy_from_slice(&g.data()[i * (p + q)..i * (p + q) + p]);
                    gb[i * q..(i + 1) * q]
                        .copy_from_slice(&g.data()[i * (p + q) + p..(i + 1) * (p + q)]);
                }
                vec![Tensor::from_vec(&[m, p], ga), Tensor::from_vec(&[m, q], gb)]
            })),
        )
    }

    /// Gather rows from an embedding table: `out[r] = table[indices[r]]`.
    /// Backward scatter-adds into the table gradient (repeated indices
    /// accumulate, as embedding lookups must).
    pub fn gather_rows(&self, table: Var, indices: &[usize]) -> Var {
        let vt = self.nodes.borrow()[table.0].value.clone();
        assert_eq!(vt.shape().len(), 2, "gather_rows table must be rank 2");
        let (v_rows, d) = (vt.shape()[0], vt.shape()[1]);
        let idx: Vec<usize> = indices.to_vec();
        for &i in &idx {
            assert!(i < v_rows, "gather index {i} out of range {v_rows}");
        }
        let mut data = Vec::with_capacity(idx.len() * d);
        for &i in &idx {
            data.extend_from_slice(&vt.data()[i * d..(i + 1) * d]);
        }
        self.push(
            Tensor::from_vec(&[idx.len(), d], data),
            vec![table.0],
            Some(Box::new(move |_out, g, _pv| {
                let mut gt = vec![0.0; v_rows * d];
                for (r, &i) in idx.iter().enumerate() {
                    for c in 0..d {
                        gt[i * d + c] += g.data()[r * d + c];
                    }
                }
                vec![Tensor::from_vec(&[v_rows, d], gt)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean squared error against a constant target (scalar output).
    pub fn mse_loss(&self, pred: Var, target: &Tensor) -> Var {
        let vp = self.nodes.borrow()[pred.0].value.clone();
        assert_eq!(vp.shape(), target.shape(), "mse target shape mismatch");
        let n = vp.len().max(1);
        let loss = vp
            .data()
            .iter()
            .zip(target.data().iter())
            .map(|(&p, &t)| (p - t) * (p - t))
            .sum::<f64>()
            / n as f64;
        let t = target.clone();
        self.push(
            Tensor::scalar(loss),
            vec![pred.0],
            Some(Box::new(move |_out, g, pv| {
                let s = 2.0 * g.item() / n as f64;
                vec![Tensor::from_vec(
                    pv[0].shape(),
                    pv[0]
                        .data()
                        .iter()
                        .zip(t.data().iter())
                        .map(|(&p, &tt)| s * (p - tt))
                        .collect(),
                )]
            })),
        )
    }

    /// Numerically-stable binary cross-entropy on logits against constant
    /// 0/1 targets (mean over elements; scalar output).
    pub fn bce_with_logits(&self, logits: Var, target: &Tensor) -> Var {
        let vl = self.nodes.borrow()[logits.0].value.clone();
        assert_eq!(vl.shape(), target.shape(), "bce target shape mismatch");
        let n = vl.len().max(1);
        // loss = max(x,0) − x·t + ln(1 + e^{−|x|})
        let loss = vl
            .data()
            .iter()
            .zip(target.data().iter())
            .map(|(&x, &t)| x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln())
            .sum::<f64>()
            / n as f64;
        let t = target.clone();
        self.push(
            Tensor::scalar(loss),
            vec![logits.0],
            Some(Box::new(move |_out, g, pv| {
                let s = g.item() / n as f64;
                vec![Tensor::from_vec(
                    pv[0].shape(),
                    pv[0]
                        .data()
                        .iter()
                        .zip(t.data().iter())
                        .map(|(&x, &tt)| s * (1.0 / (1.0 + (-x).exp()) - tt))
                        .collect(),
                )]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run the backward pass from a single-element `loss` variable,
    /// populating gradients on every contributing node.
    pub fn backward(&self, loss: Var) {
        let mut nodes = self.nodes.borrow_mut();
        assert_eq!(
            nodes[loss.0].value.len(),
            1,
            "backward requires a single-element loss"
        );
        let seed_shape = nodes[loss.0].value.shape().to_vec();
        nodes[loss.0].grad = Some(Tensor::filled(&seed_shape, 1.0));
        for i in (0..nodes.len()).rev() {
            let Some(grad) = nodes[i].grad.clone() else {
                continue;
            };
            let Some(backward) = nodes[i].backward.take() else {
                continue;
            };
            let parents = nodes[i].parents.clone();
            let parent_values: Vec<Tensor> =
                parents.iter().map(|&p| nodes[p].value.clone()).collect();
            let out_value = nodes[i].value.clone();
            let contribs = backward(&out_value, &grad, &parent_values);
            assert_eq!(contribs.len(), parents.len(), "backward arity mismatch");
            for (p, contrib) in parents.into_iter().zip(contribs) {
                match &mut nodes[p].grad {
                    Some(g) => g.add_assign(&contrib),
                    slot @ None => *slot = Some(contrib),
                }
            }
        }
    }

    /// Add the gradients of every `param`-bound leaf into the parameter
    /// set's gradient buffers (call once after [`Tape::backward`]).
    pub fn accumulate_param_grads(&self, params: &mut ParamSet) {
        let nodes = self.nodes.borrow();
        for &(node_idx, id) in self.param_links.borrow().iter() {
            if let Some(g) = &nodes[node_idx].grad {
                params.grad_mut(id).add_assign(g);
            }
        }
    }
}

// Raw matmul helpers shared by forward and backward.

fn matmul_raw(a: &Tensor, b: &Tensor, m: usize, k: usize, n: usize) -> Tensor {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a.data()[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b.data()[kk * n..(kk + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// `g (m×n) · bᵀ (n×k)` without materializing the transpose.
fn matmul_bt(g: &Tensor, b: &Tensor, m: usize, n: usize, k: usize) -> Tensor {
    let mut out = vec![0.0; m * k];
    for i in 0..m {
        for kk in 0..k {
            let mut acc = 0.0;
            for j in 0..n {
                acc += g.data()[i * n + j] * b.data()[kk * n + j];
            }
            out[i * k + kk] = acc;
        }
    }
    Tensor::from_vec(&[m, k], out)
}

/// `aᵀ (k×m) · g (m×n)` without materializing the transpose.
fn matmul_at(a: &Tensor, g: &Tensor, m: usize, k: usize, n: usize) -> Tensor {
    let mut out = vec![0.0; k * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a.data()[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let grow = &g.data()[i * n..(i + 1) * n];
            let orow = &mut out[kk * n..(kk + 1) * n];
            for (o, &gv) in orow.iter_mut().zip(grow.iter()) {
                *o += av * gv;
            }
        }
    }
    Tensor::from_vec(&[k, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_backward() {
        // loss = (a + b) * a, at a=2, b=3 → loss=10, dl/da = 2a+b = 7, dl/db = a = 2.
        let tape = Tape::new();
        let a = tape.constant(Tensor::scalar(2.0));
        let b = tape.constant(Tensor::scalar(3.0));
        let s = tape.add(a, b);
        let loss = tape.mul(s, a);
        assert_eq!(tape.value(loss).item(), 10.0);
        tape.backward(loss);
        assert!((tape.grad(a).unwrap().item() - 7.0).abs() < 1e-12);
        assert!((tape.grad(b).unwrap().item() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A·B); dL/dA = 1·Bᵀ, dL/dB = Aᵀ·1.
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.constant(Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]));
        let c = tape.matmul(a, b);
        let loss = tape.sum(c);
        tape.backward(loss);
        let ga = tape.grad(a).unwrap();
        // row sums of B: [11, 15] per column of A.
        assert_eq!(ga.data(), &[11.0, 15.0, 11.0, 15.0]);
        let gb = tape.grad(b).unwrap();
        // column sums of A: [4, 6] per row of B.
        assert_eq!(gb.data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn sigmoid_gradient_at_zero() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::scalar(0.0));
        let s = tape.sigmoid(x);
        tape.backward(s);
        assert!((tape.value(s).item() - 0.5).abs() < 1e-12);
        assert!((tape.grad(x).unwrap().item() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::vector(&[-1.0, 2.0]));
        let r = tape.relu(x);
        let loss = tape.sum(r);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]));
        let s = tape.row_softmax(x);
        let v = tape.value(s);
        assert!((v.data().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Pick out the first component as loss; softmax grads sum to 0 per row.
        let mask = tape.constant(Tensor::from_vec(&[1, 3], vec![1.0, 0.0, 0.0]));
        let picked = tape.mul(s, mask);
        let loss = tape.sum(picked);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        assert!(g.data().iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let tape = Tape::new();
        let table = tape.constant(Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]));
        // Row 1 gathered twice: its gradient must accumulate to 2.
        let g = tape.gather_rows(table, &[1, 1, 0]);
        let loss = tape.sum(g);
        tape.backward(loss);
        let gt = tape.grad(table).unwrap();
        assert_eq!(gt.data(), &[1.0, 1.0, 2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(&[2, 1], vec![1.0, 2.0]));
        let b = tape.constant(Tensor::from_vec(&[2, 2], vec![3.0, 4.0, 5.0, 6.0]));
        let c = tape.concat_cols(a, b);
        assert_eq!(tape.value(c).shape(), &[2, 3]);
        assert_eq!(tape.value(c).data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
        let loss = tape.sum(c);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().shape(), &[2, 1]);
        assert_eq!(tape.grad(b).unwrap().shape(), &[2, 2]);
    }

    #[test]
    fn mse_loss_gradient() {
        let tape = Tape::new();
        let p = tape.constant(Tensor::vector(&[1.0, 3.0]));
        let loss = tape.mse_loss(p, &Tensor::vector(&[0.0, 0.0]));
        assert!((tape.value(loss).item() - 5.0).abs() < 1e-12);
        tape.backward(loss);
        assert_eq!(tape.grad(p).unwrap().data(), &[1.0, 3.0]); // 2(p−t)/n
    }

    #[test]
    fn bce_with_logits_matches_naive() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::vector(&[0.3, -1.2]));
        let t = Tensor::vector(&[1.0, 0.0]);
        let loss = tape.bce_with_logits(x, &t);
        let got = tape.value(loss).item();
        let naive = {
            let s = |x: f64| 1.0 / (1.0 + (-x).exp());
            (-(s(0.3f64)).ln() - (1.0 - s(-1.2f64)).ln()) / 2.0
        };
        assert!((got - naive).abs() < 1e-12);
        tape.backward(loss);
        let g = tape.grad(x).unwrap();
        let s = |x: f64| 1.0 / (1.0 + (-x).exp());
        assert!((g.data()[0] - (s(0.3) - 1.0) / 2.0).abs() < 1e-12);
        assert!((g.data()[1] - (s(-1.2) - 0.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_graph_accumulates_gradients() {
        // loss = a*a + a → dl/da = 2a + 1.
        let tape = Tape::new();
        let a = tape.constant(Tensor::scalar(3.0));
        let sq = tape.mul(a, a);
        let loss = tape.add(sq, a);
        tape.backward(loss);
        assert!((tape.grad(a).unwrap().item() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip_gradient() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(
            &[2, 3],
            (0..6).map(|v| v as f64).collect(),
        ));
        let t = tape.transpose(a);
        assert_eq!(tape.value(t).shape(), &[3, 2]);
        let loss = tape.sum(t);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap(), Tensor::filled(&[2, 3], 1.0));
    }

    #[test]
    fn unused_variable_has_no_grad() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::scalar(1.0));
        let b = tape.constant(Tensor::scalar(2.0));
        let loss = tape.mul(a, a);
        tape.backward(loss);
        assert!(tape.grad(b).is_none());
    }
}
