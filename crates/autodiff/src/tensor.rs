//! Dense n-dimensional tensor (rank 0–2 in practice).

use rand::Rng;

/// A dense tensor of `f64` with row-major storage.
///
/// Rank 0 (scalars), rank 1 (vectors) and rank 2 (matrices) cover every
/// model in this workspace; higher ranks are representable but no op
/// requires them.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f64) -> Self {
        Tensor {
            shape: vec![],
            data: vec![v],
        }
    }

    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Tensor filled with `v`.
    pub fn filled(shape: &[usize], v: f64) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![v; shape.iter().product()],
        }
    }

    /// Build from shape and row-major data. Panics when sizes disagree
    /// (construction is always programmer-controlled here).
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} incompatible with {} elements",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// 1-D tensor from a slice.
    pub fn vector(v: &[f64]) -> Self {
        Tensor {
            shape: vec![v.len()],
            data: v.to_vec(),
        }
    }

    /// Uniform random tensor in `[-scale, scale]`.
    pub fn uniform(shape: &[usize], scale: f64, rng: &mut impl Rng) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(|_| rng.gen_range(-scale..=scale)).collect(),
        }
    }

    /// Xavier/Glorot-style initialization for a `rows × cols` weight matrix.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        Self::uniform(&[rows, cols], scale, rng)
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data view.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The single value of a one-element tensor. Panics otherwise.
    pub fn item(&self) -> f64 {
        assert_eq!(self.data.len(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Number of rows when interpreted as a matrix (rank 2), or 1 for
    /// vectors/scalars.
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            2 => self.shape[0],
            _ => 1,
        }
    }

    /// Number of columns when interpreted as a matrix: last dimension, or 1
    /// for scalars.
    pub fn cols(&self) -> usize {
        self.shape.last().copied().unwrap_or(1)
    }

    /// Matrix entry accessor (rank-2 tensors).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable matrix entry accessor.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[i * self.shape[1] + j]
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `self += other` (shapes must match).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Set all elements to zero.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// True when every pair of elements differs by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.shape(), &[] as &[usize]);
        assert_eq!(t.item(), 3.5);
        assert_eq!(t.rows(), 1);
        assert_eq!(t.cols(), 1);
    }

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0; 6]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn from_vec_panics_on_mismatch() {
        Tensor::from_vec(&[2, 2], vec![0.0; 3]);
    }

    #[test]
    fn at_indexing_row_major() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f64).collect());
        assert_eq!(t.at(0, 0), 0.0);
        assert_eq!(t.at(0, 2), 2.0);
        assert_eq!(t.at(1, 0), 3.0);
    }

    #[test]
    fn map_and_add_assign() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let mut b = a.map(|v| v * 10.0);
        b.add_assign(&a);
        assert_eq!(b.data(), &[11.0, 22.0]);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(10, 20, &mut rng);
        let bound = (6.0 / 30.0f64).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f64).collect());
        let r = t.reshaped(&[6]);
        assert_eq!(r.shape(), &[6]);
        assert_eq!(r.data(), t.data());
    }
}
