//! Optimizers: SGD and Adam.
//!
//! The paper trains TCSS with Adam (lr 0.001, weight decay 0.1, §V-D); the
//! neural baselines use the same optimizer family. `step` consumes the
//! gradients accumulated in a [`ParamSet`] and zeroes them.

use crate::params::ParamSet;
use crate::tensor::Tensor;

/// Common interface for gradient-based optimizers.
pub trait Optimizer {
    /// Apply one update using the gradients stored in `params`, then zero
    /// the gradients.
    fn step(&mut self, params: &mut ParamSet);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Decoupled L2 weight decay coefficient (0 disables).
    pub weight_decay: f64,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            weight_decay: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) {
        let ids: Vec<_> = params.ids().collect();
        for id in ids {
            let wd = self.weight_decay;
            let lr = self.lr;
            let grad = params.grad(id).clone();
            let value = params.value_mut(id);
            for (v, &g) in value.data_mut().iter_mut().zip(grad.data().iter()) {
                *v -= lr * (g + wd * *v);
            }
        }
        params.zero_grads();
    }
}

/// Adam (Kingma & Ba 2015) with decoupled weight decay (AdamW-style, which
/// is what `torch.optim.Adam(weight_decay=...)`'s L2 term approximates for
/// the small decay values used in the paper).
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical fuzz.
    pub eps: f64,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas and no weight decay.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with the paper's configuration: lr 0.001, weight decay 0.1.
    pub fn paper_default() -> Self {
        let mut a = Adam::new(0.001);
        a.weight_decay = 0.1;
        a
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) {
        let ids: Vec<_> = params.ids().collect();
        // Lazily size the moment buffers on first step (or if params grew).
        while self.m.len() < ids.len() {
            let id = ids[self.m.len()];
            self.m.push(Tensor::zeros(params.value(id).shape()));
            self.v.push(Tensor::zeros(params.value(id).shape()));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, id) in ids.into_iter().enumerate() {
            let grad = params.grad(id).clone();
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            let value = params.value_mut(id);
            for (((w, &g), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(grad.data().iter())
                .zip(m.data_mut().iter_mut())
                .zip(v.data_mut().iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
        params.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimize (w − 3)² with each optimizer.
    fn quadratic_converges(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::scalar(0.0));
        for _ in 0..steps {
            let tape = Tape::new();
            let wv = tape.param(&params, w);
            let target = tape.constant(Tensor::scalar(3.0));
            let d = tape.sub(wv, target);
            let loss = tape.mul(d, d);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut params);
            opt.step(&mut params);
        }
        params.value(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_converges(&mut Sgd::new(0.1), 200);
        assert!((w - 3.0).abs() < 1e-6, "got {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_converges(&mut Adam::new(0.1), 500);
        assert!((w - 3.0).abs() < 1e-4, "got {w}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let mut plain = Sgd::new(0.1);
        let mut decayed = Sgd {
            lr: 0.1,
            weight_decay: 0.5,
        };
        let w_plain = quadratic_converges(&mut plain, 300);
        let w_decayed = quadratic_converges(&mut decayed, 300);
        assert!(w_decayed < w_plain, "{w_decayed} !< {w_plain}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::scalar(1.0));
        params.grad_mut(w).data_mut()[0] = 2.0;
        Sgd::new(0.1).step(&mut params);
        assert_eq!(params.grad(w).item(), 0.0);
    }
}
