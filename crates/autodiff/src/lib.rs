//! # tcss-autodiff
//!
//! A reverse-mode, tape-based automatic-differentiation engine with the
//! neural-network building blocks the TCSS paper's *baselines* need.
//!
//! The TCSS core model trains with hand-derived analytic gradients (the
//! rewritten loss of Eq 15 has a special structure that makes this both
//! simple and fast). The baselines, however, are genuine neural networks —
//! NCF (MLP), NTM (neural tensor machine), CoSTCo (CNN over stacked
//! factors), STRNN/STGN (recurrent cells) and STAN (self-attention) — so a
//! real autodiff engine is a required substrate. This crate implements one
//! from scratch:
//!
//! * [`Tensor`] — a small dense n-dimensional array (rank 0–2 in practice).
//! * [`Tape`] / [`Var`] — a gradient tape: every op records its backward
//!   closure; [`Tape::backward`] replays them in reverse.
//! * [`ParamSet`] / [`ParamId`] — named persistent parameters that live
//!   *across* tapes; a fresh tape is built per training step.
//! * [`optim`] — SGD and Adam.
//! * [`layers`] — Dense and Embedding layers built on the primitive ops.
//! * [`gradcheck`] — finite-difference gradient verification, used
//!   throughout the test suites of this crate and `tcss-baselines`.
//!
//! ## Example
//!
//! ```
//! use tcss_autodiff::{ParamSet, Tape, Tensor};
//! use tcss_autodiff::optim::{Adam, Optimizer};
//!
//! // Fit y = 2x with a single weight.
//! let mut params = ParamSet::new();
//! let w = params.add("w", Tensor::scalar(0.0));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let tape = Tape::new();
//!     let wv = tape.param(&params, w);
//!     let x = tape.constant(Tensor::scalar(3.0));
//!     let pred = tape.mul(wv, x);
//!     let target = tape.constant(Tensor::scalar(6.0));
//!     let diff = tape.sub(pred, target);
//!     let loss = tape.mul(diff, diff);
//!     tape.backward(loss);
//!     tape.accumulate_param_grads(&mut params);
//!     opt.step(&mut params);
//! }
//! assert!((params.value(w).item() - 2.0).abs() < 1e-3);
//! ```

// Index-based loops are used deliberately throughout this crate: the
// numeric kernels mirror the paper's subscripted equations, and iterator
// chains over multiple parallel buffers obscure rather than clarify them.
#![allow(clippy::needless_range_loop)]

pub mod gradcheck;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;

pub use gradcheck::{check_gradients, check_gradients_fn, GradCheckReport};
pub use params::{ParamId, ParamSet};
pub use tape::{Tape, Var};
pub use tensor::Tensor;
