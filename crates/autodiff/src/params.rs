//! Persistent, named model parameters.
//!
//! Parameters outlive the per-step [`crate::Tape`]: each training step binds
//! them onto a fresh tape with [`crate::Tape::param`], runs backward, and
//! copies leaf gradients back with [`crate::Tape::accumulate_param_grads`];
//! an [`crate::optim::Optimizer`] then consumes `grad` and zeroes it.

use crate::tensor::Tensor;

/// Opaque handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A collection of named parameters with paired gradient buffers.
#[derive(Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; the gradient buffer starts at zero.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.params.push(Param {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value access (used by optimizers and initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Current gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Mutable gradient access (used by tapes and optimizers).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].grad
    }

    /// Zero all gradient buffers.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.zero_();
        }
    }

    /// Global L2 norm of all gradients (useful for clipping / diagnostics).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .flat_map(|p| p.grad.data().iter())
            .map(|g| g * g)
            .sum::<f64>()
            .sqrt()
    }

    /// Clip all gradients so the *global* norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::vector(&[1.0, 2.0]));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 2);
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.value(w).data(), &[1.0, 2.0]);
        assert_eq!(ps.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn zero_grads_resets() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Tensor::scalar(1.0));
        ps.grad_mut(w).data_mut()[0] = 5.0;
        ps.zero_grads();
        assert_eq!(ps.grad(w).item(), 0.0);
    }

    #[test]
    fn clip_rescales_global_norm() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::scalar(0.0));
        let b = ps.add("b", Tensor::scalar(0.0));
        ps.grad_mut(a).data_mut()[0] = 3.0;
        ps.grad_mut(b).data_mut()[0] = 4.0;
        assert!((ps.grad_norm() - 5.0).abs() < 1e-12);
        ps.clip_grad_norm(1.0);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((ps.grad(a).item() / ps.grad(b).item() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn clip_noop_under_threshold() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Tensor::scalar(0.0));
        ps.grad_mut(a).data_mut()[0] = 0.5;
        ps.clip_grad_norm(1.0);
        assert_eq!(ps.grad(a).item(), 0.5);
    }
}
