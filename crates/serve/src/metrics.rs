//! Serving metrics: monotone atomic counters plus per-stage log-bucketed
//! latency histograms, read as plain snapshots.
//!
//! Counters use `Relaxed` ordering throughout — they are statistics, not
//! synchronization; each counter is independently monotone and a snapshot
//! taken while traffic is in flight is a consistent-enough view for
//! dashboards and the bench harness. Per-stage latencies are recorded
//! into [`LatencyHistogram`]s (one sample per batch per stage), so
//! snapshots expose real p50/p99/p999 tails, not just means; the legacy
//! `*_ns` sum fields are preserved as the histogram sums.
//!
//! [`MetricsInner::take`] resets counters and histograms with per-cell
//! atomic swaps: under concurrent recorders every increment lands in
//! exactly one snapshot (counts are conserved — the race test in
//! `tests/histogram_metrics.rs` pins this down).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{HistogramSnapshot, LatencyHistogram};

/// Internal counter block owned by the engine.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub weight_hits: AtomicU64,
    pub weight_misses: AtomicU64,
    pub topn_hits: AtomicU64,
    pub topn_misses: AtomicU64,
    pub model_swaps: AtomicU64,
    pub reaped_stale: AtomicU64,
    pub weight_build: LatencyHistogram,
    pub score_matmul: LatencyHistogram,
    pub select: LatencyHistogram,
}

impl MetricsInner {
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServingMetrics {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServingMetrics {
            requests: get(&self.requests),
            batches: get(&self.batches),
            weight_hits: get(&self.weight_hits),
            weight_misses: get(&self.weight_misses),
            topn_hits: get(&self.topn_hits),
            topn_misses: get(&self.topn_misses),
            model_swaps: get(&self.model_swaps),
            reaped_stale: get(&self.reaped_stale),
            weight_build_ns: self.weight_build.snapshot().sum,
            score_matmul_ns: self.score_matmul.snapshot().sum,
            select_ns: self.select.snapshot().sum,
        }
    }

    /// Snapshot-and-reset: every counter is `swap(0)`-ed and every
    /// histogram drained bucket-by-bucket, so concurrent recorders lose
    /// nothing — each increment appears in exactly one taken snapshot.
    pub fn take(&self) -> (ServingMetrics, StageHistograms) {
        let take = |c: &AtomicU64| c.swap(0, Ordering::Relaxed);
        let stages = StageHistograms {
            weight_build: self.weight_build.snapshot_and_reset(),
            score_matmul: self.score_matmul.snapshot_and_reset(),
            select: self.select.snapshot_and_reset(),
        };
        let metrics = ServingMetrics {
            requests: take(&self.requests),
            batches: take(&self.batches),
            weight_hits: take(&self.weight_hits),
            weight_misses: take(&self.weight_misses),
            topn_hits: take(&self.topn_hits),
            topn_misses: take(&self.topn_misses),
            model_swaps: take(&self.model_swaps),
            reaped_stale: take(&self.reaped_stale),
            weight_build_ns: stages.weight_build.sum,
            score_matmul_ns: stages.score_matmul.sum,
            select_ns: stages.select.sum,
        };
        (metrics, stages)
    }

    pub fn stage_histograms(&self) -> StageHistograms {
        StageHistograms {
            weight_build: self.weight_build.snapshot(),
            score_matmul: self.score_matmul.snapshot(),
            select: self.select.snapshot(),
        }
    }
}

/// Point-in-time view of the engine's counters (plain data, freely
/// copyable and serializable by hand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingMetrics {
    /// Requests scored or answered from cache, across all batches.
    pub requests: u64,
    /// Batch calls served (single-request convenience calls count 1).
    pub batches: u64,
    /// Weight-vector cache hits.
    pub weight_hits: u64,
    /// Weight-vector cache misses (vector recomputed and cached).
    pub weight_misses: u64,
    /// Top-`n` result cache hits.
    pub topn_hits: u64,
    /// Top-`n` result cache misses (scored, selected and cached).
    pub topn_misses: u64,
    /// Models published via swap (the initial model counts 0).
    pub model_swaps: u64,
    /// Stale cache entries reclaimed by [`purge_stale`] calls (manual or
    /// the server's periodic maintenance tick), weight + top-`n` combined.
    ///
    /// [`purge_stale`]: crate::ServingEngine::purge_stale
    pub reaped_stale: u64,
    /// Total nanoseconds building / fetching weight vectors.
    pub weight_build_ns: u64,
    /// Total nanoseconds in the batched `W · U²ᵀ` score matmul.
    pub score_matmul_ns: u64,
    /// Total nanoseconds in top-`n` selection.
    pub select_ns: u64,
}

/// Per-stage latency histograms (one sample per batch per stage); see
/// [`HistogramSnapshot`] for p50/p99/p999 reads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageHistograms {
    /// Weight-vector build/fetch stage.
    pub weight_build: HistogramSnapshot,
    /// Batched `W · U²ᵀ` score matmul stage.
    pub score_matmul: HistogramSnapshot,
    /// Top-`n` selection stage.
    pub select: HistogramSnapshot,
}

impl ServingMetrics {
    /// Weight-cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn weight_hit_rate(&self) -> f64 {
        hit_rate(self.weight_hits, self.weight_misses)
    }

    /// Top-`n` cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn topn_hit_rate(&self) -> f64 {
        hit_rate(self.topn_hits, self.topn_misses)
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_handle_empty_and_mixed() {
        let mut m = ServingMetrics::default();
        assert_eq!(m.weight_hit_rate(), 0.0);
        m.weight_hits = 3;
        m.weight_misses = 1;
        assert!((m.weight_hit_rate() - 0.75).abs() < 1e-12);
        m.topn_hits = 1;
        m.topn_misses = 3;
        assert!((m.topn_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn take_drains_counters_and_histograms() {
        let inner = MetricsInner::default();
        MetricsInner::add(&inner.requests, 5);
        inner.weight_build.record(120);
        inner.weight_build.record(40);
        let (m, stages) = inner.take();
        assert_eq!(m.requests, 5);
        assert_eq!(m.weight_build_ns, 160);
        assert_eq!(stages.weight_build.count, 2);
        let (m2, stages2) = inner.take();
        assert_eq!(m2.requests, 0);
        assert_eq!(stages2.weight_build.count, 0);
    }
}
