//! Serving metrics: monotone atomic counters, read as a plain snapshot.
//!
//! Counters use `Relaxed` ordering throughout — they are statistics, not
//! synchronization; each counter is independently monotone and a snapshot
//! taken while traffic is in flight is a consistent-enough view for
//! dashboards and the bench harness. Latency sums are nanosecond totals
//! per pipeline stage; divide by the matching counter for a mean.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counter block owned by the engine.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub requests: AtomicU64,
    pub batches: AtomicU64,
    pub weight_hits: AtomicU64,
    pub weight_misses: AtomicU64,
    pub topn_hits: AtomicU64,
    pub topn_misses: AtomicU64,
    pub model_swaps: AtomicU64,
    pub weight_build_ns: AtomicU64,
    pub score_matmul_ns: AtomicU64,
    pub select_ns: AtomicU64,
}

impl MetricsInner {
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServingMetrics {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServingMetrics {
            requests: get(&self.requests),
            batches: get(&self.batches),
            weight_hits: get(&self.weight_hits),
            weight_misses: get(&self.weight_misses),
            topn_hits: get(&self.topn_hits),
            topn_misses: get(&self.topn_misses),
            model_swaps: get(&self.model_swaps),
            weight_build_ns: get(&self.weight_build_ns),
            score_matmul_ns: get(&self.score_matmul_ns),
            select_ns: get(&self.select_ns),
        }
    }
}

/// Point-in-time view of the engine's counters (plain data, freely
/// copyable and serializable by hand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingMetrics {
    /// Requests scored or answered from cache, across all batches.
    pub requests: u64,
    /// Batch calls served (single-request convenience calls count 1).
    pub batches: u64,
    /// Weight-vector cache hits.
    pub weight_hits: u64,
    /// Weight-vector cache misses (vector recomputed and cached).
    pub weight_misses: u64,
    /// Top-`n` result cache hits.
    pub topn_hits: u64,
    /// Top-`n` result cache misses (scored, selected and cached).
    pub topn_misses: u64,
    /// Models published via swap (the initial model counts 0).
    pub model_swaps: u64,
    /// Total nanoseconds building / fetching weight vectors.
    pub weight_build_ns: u64,
    /// Total nanoseconds in the batched `W · U²ᵀ` score matmul.
    pub score_matmul_ns: u64,
    /// Total nanoseconds in top-`n` selection.
    pub select_ns: u64,
}

impl ServingMetrics {
    /// Weight-cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn weight_hit_rate(&self) -> f64 {
        hit_rate(self.weight_hits, self.weight_misses)
    }

    /// Top-`n` cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn topn_hit_rate(&self) -> f64 {
        hit_rate(self.topn_hits, self.topn_misses)
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_handle_empty_and_mixed() {
        let mut m = ServingMetrics::default();
        assert_eq!(m.weight_hit_rate(), 0.0);
        m.weight_hits = 3;
        m.weight_misses = 1;
        assert!((m.weight_hit_rate() - 0.75).abs() < 1e-12);
        m.topn_hits = 1;
        m.topn_misses = 3;
        assert!((m.topn_hit_rate() - 0.25).abs() < 1e-12);
    }
}
