//! Compact mmap-able serving snapshots (`.tcsssnap`).
//!
//! The training stack hands the serving layer an f64 [`TcssModel`]; at
//! ROADMAP scale (10M users, r = 32) U¹ alone is ~2.5 GB and cold start
//! pays a full deserialize pass over a text checkpoint. This module
//! converts the model once, at export/swap time, into a flat, page-aligned,
//! checksummed on-disk format that the engine scores **directly out of an
//! `mmap(2)` mapping** — zero deserialization, so cold start is O(1)
//! page-ins, and multiple serving processes share one read-only mapping of
//! the same physical pages.
//!
//! ## File layout (little-endian)
//!
//! ```text
//! offset 0      ┌────────────────────────────────────────────┐
//!               │ header (one 4096-byte page)                │
//!               │   0  magic            "TCSSSNAP"  [u8; 8]  │
//!               │   8  format_version   u32  (= 1)           │
//!               │  12  quant_mode       u32  (0 f32, 1 i16)  │
//!               │  16  n_users (I)      u64                  │
//!               │  24  n_pois  (J)      u64                  │
//!               │  32  n_times (K)      u64                  │
//!               │  40  rank    (r)      u64                  │
//!               │  48  payload_len      u64                  │
//!               │  56  payload_checksum u64  (FNV-1a 64)     │
//!               │  64  header_checksum  u64  (FNV over the   │
//!               │      whole header page with this field     │
//!               │      zeroed — padding flips are caught)    │
//!               │  72  zero padding to 4096                  │
//! offset 4096   ├────────────────────────────────────────────┤
//!               │ payload: sections at 64-byte-aligned       │
//!               │ offsets, in fixed order                    │
//!               │   h          r × f32                       │
//!               │   U¹ rows    I·r × f32   (or I·r × i16)    │
//!               │   U¹ scales  I × f32     (i16 mode only)   │
//!               │   U² rows    J·r × …     (+ scales)        │
//!               │   U³ rows    K·r × …     (+ scales)        │
//!               └────────────────────────────────────────────┘
//! ```
//!
//! The payload starts exactly one page in, and every section offset is a
//! multiple of 64 from the payload base, so when the file is mapped (page-
//! aligned by `mmap`'s contract) each section is safely referenced as a
//! `&[f32]` / `&[i16]` via `slice::from_raw_parts` — no copy, no parse.
//! Section offsets are *derived* from `(mode, dims)` by [`Layout`], never
//! stored: the header's `payload_len` must match the derived length, which
//! cross-checks dims against mode for free.
//!
//! ## Quantization and the error budget
//!
//! * **f32 mode** — every factor entry is the f64 value rounded to nearest
//!   f32 (`as f32`): ~1e-7 relative error, half the bytes.
//! * **i16 mode** — each factor *row* stores `q = round(v / s)` clamped to
//!   ±32767 with one f32 scale `s = max|row| / 32767`; a zero row gets
//!   `s = 0`. Scoring never materializes the dequantized row: the kernel
//!   widens i16 → f32 in-register and one multiply by `s` lands at the end
//!   (`score = s_j · dot_f32_i16(w, q_j)`), so the i16 bytes are what sits
//!   in cache.
//!
//! Correctness is an explicit error budget, not bitwise equality: the
//! snapshot agreement suite asserts top-n agreement against f64
//! `scores_for` above a configured threshold, and the documented scale
//! bounds give *exact* rank agreement for i16 when scores are separated by
//! more than the quantization step. The batched path and the per-request
//! path here share one kernel per element ([`kernels::dot_f32`] /
//! [`kernels::dot_f32_i16`] in the canonical [`tcss_linalg::LANES_F32`]
//! order), so batch rows are bit-for-bit the per-request scores — the f64
//! engine invariant, carried over.
//!
//! ## Integrity
//!
//! Writes are atomic (temp + fsync + rename, the PR 2 checkpoint
//! contract); the header and payload carry independent FNV-1a 64 digests.
//! [`SnapshotModel::open`] verifies both — any truncation or bit flip is a
//! typed [`SnapError`], never a garbage model. [`SnapshotModel::open_fast`]
//! verifies the header and the *file size* only (every truncation is still
//! caught; payload bit flips are not), keeping the cold-start path O(1) for
//! operators who trust their disk and want instant process start.

use std::fmt;
use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::Path;

use tcss_core::TcssModel;
use tcss_linalg::kernels;

/// Magic bytes at offset 0.
pub const MAGIC: &[u8; 8] = b"TCSSSNAP";
/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Header size; the payload starts at this offset so an `mmap` of the file
/// leaves every section page-relative-aligned.
pub const HEADER_LEN: usize = 4096;
/// Section alignment within the payload.
const SECTION_ALIGN: usize = 64;

/// Factor storage mode of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// f64 factors rounded to f32 (half the bytes, ~1e-7 relative error).
    F32,
    /// Per-row-scaled i16 fixed point (quarter the bytes; see module docs
    /// for the scale/rounding contract).
    I16,
}

impl QuantMode {
    fn code(self) -> u32 {
        match self {
            QuantMode::F32 => 0,
            QuantMode::I16 => 1,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(QuantMode::F32),
            1 => Some(QuantMode::I16),
            _ => None,
        }
    }

    /// Parse a CLI spelling (`"f32"` / `"i16"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(QuantMode::F32),
            "i16" => Some(QuantMode::I16),
            _ => None,
        }
    }

    /// Bytes per factor entry.
    fn entry_bytes(self) -> usize {
        match self {
            QuantMode::F32 => 4,
            QuantMode::I16 => 2,
        }
    }
}

impl fmt::Display for QuantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QuantMode::F32 => "f32",
            QuantMode::I16 => "i16",
        })
    }
}

/// Typed snapshot-load failures. Every corruption mode an operator can hit
/// — truncation, bit flips, version skew, the wrong file entirely — maps to
/// a distinct variant; a snapshot never half-loads.
#[derive(Debug)]
pub enum SnapError {
    /// Underlying filesystem / mmap failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// Written by an incompatible format version.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
    },
    /// Unknown quantization-mode code.
    BadQuantMode {
        /// Mode code stamped in the file.
        code: u32,
    },
    /// The header's own checksum does not match its bytes.
    HeaderCorrupt {
        /// Digest stored in the header.
        stored: u64,
        /// Digest computed over the header bytes.
        computed: u64,
    },
    /// The file is shorter (or longer) than the header says it must be —
    /// the signature of a truncated copy or a torn download.
    Truncated {
        /// Expected total file length in bytes.
        expected: u64,
        /// Actual file length in bytes.
        actual: u64,
    },
    /// Header dims don't reproduce the header's `payload_len` — the header
    /// is internally inconsistent (bit flip in a dimension field).
    DimsMismatch {
        /// Payload length derived from the dims and mode.
        derived: u64,
        /// Payload length stored in the header.
        stored: u64,
    },
    /// The payload digest does not match — a bit flip inside factor data.
    ChecksumMismatch {
        /// Digest stored in the header.
        stored: u64,
        /// Digest computed over the payload bytes.
        computed: u64,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapError::BadMagic { found } => {
                write!(f, "not a .tcsssnap file: magic bytes {found:02x?}")
            }
            SnapError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
            ),
            SnapError::BadQuantMode { code } => {
                write!(f, "unknown quantization-mode code {code}")
            }
            SnapError::HeaderCorrupt { stored, computed } => write!(
                f,
                "snapshot header corrupt: stored checksum {stored:016x}, computed {computed:016x}"
            ),
            SnapError::Truncated { expected, actual } => write!(
                f,
                "snapshot truncated: header requires {expected} bytes, file has {actual}"
            ),
            SnapError::DimsMismatch { derived, stored } => write!(
                f,
                "snapshot header inconsistent: dims derive payload length {derived}, header stores {stored}"
            ),
            SnapError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot payload corrupt: stored checksum {stored:016x}, computed {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Integrity primitives. The digest is the workspace-canonical
// `tcss_core::digest::fnv1a64` (the `snapshot_format.rs` test suite keeps
// its own deliberately independent restatement as a cross-check).
// ---------------------------------------------------------------------

use tcss_core::digest::fnv1a64;

/// Atomic byte write: temp file in the same directory, fsync, rename over
/// the target, fsync the directory. A crash leaves the old file or the new
/// file — never a mix.
fn atomic_write_bytes(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Layout: section offsets derived from (mode, dims), never stored.
// ---------------------------------------------------------------------

fn align_up(off: usize, align: usize) -> usize {
    off.div_ceil(align) * align
}

/// Byte offsets of every payload section, relative to the payload base
/// (file offset [`HEADER_LEN`]). Pure function of `(mode, dims)` — the
/// reader re-derives it and cross-checks against the header's
/// `payload_len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    h: usize,
    u1: usize,
    u1_scales: usize,
    u2: usize,
    u2_scales: usize,
    u3: usize,
    u3_scales: usize,
    len: usize,
}

impl Layout {
    fn derive(mode: QuantMode, dims: (usize, usize, usize), r: usize) -> Layout {
        let (i, j, k) = dims;
        let e = mode.entry_bytes();
        let scales = |rows: usize| match mode {
            QuantMode::F32 => 0,
            QuantMode::I16 => rows * 4,
        };
        let h = 0;
        let u1 = align_up(h + r * 4, SECTION_ALIGN);
        let u1_scales = align_up(u1 + i * r * e, SECTION_ALIGN);
        let u2 = align_up(u1_scales + scales(i), SECTION_ALIGN);
        let u2_scales = align_up(u2 + j * r * e, SECTION_ALIGN);
        let u3 = align_up(u2_scales + scales(j), SECTION_ALIGN);
        let u3_scales = align_up(u3 + k * r * e, SECTION_ALIGN);
        let len = align_up(u3_scales + scales(k), SECTION_ALIGN);
        Layout {
            h,
            u1,
            u1_scales,
            u2,
            u2_scales,
            u3,
            u3_scales,
            len,
        }
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn put_f32(buf: &mut [u8], off: usize, values: impl Iterator<Item = f32>) {
    let mut o = off;
    for v in values {
        buf[o..o + 4].copy_from_slice(&v.to_le_bytes());
        o += 4;
    }
}

/// Quantize one f64 row to i16 with a shared scale; returns the scale.
/// `s = max|row| / 32767` (computed in f64, stored as f32); each entry is
/// `round(v / s)` clamped to ±32767. A zero row gets scale 0 and all-zero
/// codes, which dequantizes exactly.
fn quantize_row(row: &[f64], out: &mut [i16]) -> f32 {
    let max_abs = row.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    let scale = (max_abs / 32767.0) as f32;
    // Quantize against the f32 scale actually stored, not the f64 ratio,
    // so the codes are optimal for the dequantization the reader performs.
    let inv = 1.0 / f64::from(scale);
    for (o, &v) in out.iter_mut().zip(row) {
        *o = (v * inv).round().clamp(-32767.0, 32767.0) as i16;
    }
    scale
}

fn write_factor(
    buf: &mut [u8],
    mode: QuantMode,
    data_off: usize,
    scales_off: usize,
    rows: usize,
    r: usize,
    m: &tcss_linalg::Matrix,
) {
    match mode {
        QuantMode::F32 => {
            put_f32(
                buf,
                data_off,
                (0..rows).flat_map(|i| m.row(i).iter().map(|&v| v as f32)),
            );
        }
        QuantMode::I16 => {
            let mut q = vec![0i16; r];
            for i in 0..rows {
                let s = quantize_row(m.row(i), &mut q);
                let mut o = data_off + i * r * 2;
                for &code in &q {
                    buf[o..o + 2].copy_from_slice(&code.to_le_bytes());
                    o += 2;
                }
                let so = scales_off + i * 4;
                buf[so..so + 4].copy_from_slice(&s.to_le_bytes());
            }
        }
    }
}

/// Serialize `model` into the full `.tcsssnap` byte image (header +
/// payload). Exposed for tests that corrupt bytes in memory; production
/// callers use [`write_snapshot`].
pub fn snapshot_bytes(model: &TcssModel, mode: QuantMode) -> Vec<u8> {
    let dims = model.dims();
    let r = model.rank();
    let (i, j, k) = dims;
    let layout = Layout::derive(mode, dims, r);
    let mut buf = vec![0u8; HEADER_LEN + layout.len];

    {
        let payload = &mut buf[HEADER_LEN..];
        put_f32(payload, layout.h, model.h.iter().map(|&v| v as f32));
        write_factor(payload, mode, layout.u1, layout.u1_scales, i, r, &model.u1);
        write_factor(payload, mode, layout.u2, layout.u2_scales, j, r, &model.u2);
        write_factor(payload, mode, layout.u3, layout.u3_scales, k, r, &model.u3);
    }
    let payload_sum = fnv1a64(&buf[HEADER_LEN..]);

    buf[0..8].copy_from_slice(MAGIC);
    buf[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf[12..16].copy_from_slice(&mode.code().to_le_bytes());
    buf[16..24].copy_from_slice(&(i as u64).to_le_bytes());
    buf[24..32].copy_from_slice(&(j as u64).to_le_bytes());
    buf[32..40].copy_from_slice(&(k as u64).to_le_bytes());
    buf[40..48].copy_from_slice(&(r as u64).to_le_bytes());
    buf[48..56].copy_from_slice(&(layout.len as u64).to_le_bytes());
    buf[56..64].copy_from_slice(&payload_sum.to_le_bytes());
    // The header digest covers the entire header page with its own field
    // zeroed (which it is, at this point), so a flip anywhere in the page
    // — fields *or* padding — is caught.
    let header_sum = fnv1a64(&buf[..HEADER_LEN]);
    buf[64..72].copy_from_slice(&header_sum.to_le_bytes());
    buf
}

/// Convert `model` and write it atomically to `path`.
pub fn write_snapshot(model: &TcssModel, mode: QuantMode, path: &Path) -> Result<(), SnapError> {
    let bytes = snapshot_bytes(model, mode);
    atomic_write_bytes(path, &bytes)?;
    Ok(())
}

// ---------------------------------------------------------------------
// mmap(2) — hand-declared, matching the repo's no-deps FFI style (see the
// poll(2) declaration in net::server). std links libc, so a plain extern
// declaration suffices.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    #[cfg(target_os = "linux")]
    pub type Off = i64;
    #[cfg(not(target_os = "linux"))]
    pub type Off = i64; // 64-bit off_t on every modern unix this repo targets

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: Off,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// The bytes backing an open snapshot: a read-only private mapping on
/// unix, an owned 8-byte-aligned buffer elsewhere (or when mapping fails,
/// e.g. on filesystems without mmap support).
enum SnapBuf {
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// `Vec<u64>` backing guarantees 8-byte alignment for the header and
    /// every (64-byte-aligned) section.
    Owned { buf: Vec<u64>, len: usize },
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated or
// remapped after construction; sharing the pointer across threads is a
// plain shared read of immutable memory.
unsafe impl Send for SnapBuf {}
unsafe impl Sync for SnapBuf {}

impl SnapBuf {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: ptr/len delimit a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop.
            SnapBuf::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            SnapBuf::Owned { buf, len } => {
                // SAFETY: the u64 backing covers at least `len` bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }
}

impl Drop for SnapBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let SnapBuf::Mapped { ptr, len } = *self {
            // SAFETY: ptr/len came from a successful mmap of exactly len
            // bytes and are unmapped exactly once, here.
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

#[cfg(unix)]
fn map_file(file: &File, len: usize) -> Option<SnapBuf> {
    use std::os::unix::io::AsRawFd;
    if len == 0 {
        return None;
    }
    // SAFETY: requesting a fresh PROT_READ/MAP_PRIVATE mapping of an open
    // fd; the kernel picks the address. Failure is MAP_FAILED, checked.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr == usize::MAX as *mut std::ffi::c_void || ptr.is_null() {
        return None;
    }
    Some(SnapBuf::Mapped {
        ptr: ptr as *const u8,
        len,
    })
}

fn read_owned(file: &mut File, len: usize) -> std::io::Result<SnapBuf> {
    let mut buf = vec![0u64; len.div_ceil(8)];
    // SAFETY: the u64 backing covers at least `len` bytes; u64 has no
    // invalid bit patterns, so writing raw file bytes into it is sound.
    let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
    file.read_exact(dst)?;
    Ok(SnapBuf::Owned { buf, len })
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// An open snapshot the engine scores directly out of.
///
/// Factor sections are borrowed straight from the backing mapping as
/// `&[f32]` / `&[i16]` — the model is never deserialized. All accessors
/// are `&self`; the type is `Send + Sync` and meant to be shared behind
/// the engine's `Arc<ModelSnapshot>`.
pub struct SnapshotModel {
    buf: SnapBuf,
    mode: QuantMode,
    dims: (usize, usize, usize),
    rank: usize,
    layout: Layout,
}

impl fmt::Debug for SnapshotModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (i, j, k) = self.dims;
        f.debug_struct("SnapshotModel")
            .field("mode", &self.mode)
            .field("dims", &format_args!("{i}x{j}x{k}"))
            .field("rank", &self.rank)
            .field("payload_bytes", &self.layout.len)
            .finish()
    }
}

fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

impl SnapshotModel {
    /// Open and **fully verify** `path`: header checksum, exact file
    /// length, dims consistency, payload checksum. Any corruption is a
    /// typed [`SnapError`]; this is the default the CLI uses.
    pub fn open(path: &Path) -> Result<Self, SnapError> {
        Self::open_impl(path, true)
    }

    /// Open with **O(1) verification**: header checksum and exact file
    /// length only — the payload is never scanned, so cold start does no
    /// work proportional to model size. Every truncation is still caught
    /// (the header pins the exact byte length); a bit flip inside factor
    /// data is not. Use where startup latency beats flip paranoia.
    pub fn open_fast(path: &Path) -> Result<Self, SnapError> {
        Self::open_impl(path, false)
    }

    fn open_impl(path: &Path, verify_payload: bool) -> Result<Self, SnapError> {
        let mut file = File::open(path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < HEADER_LEN as u64 {
            return Err(SnapError::Truncated {
                expected: HEADER_LEN as u64,
                actual: actual_len,
            });
        }

        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        let stored_hsum = get_u64(&header, 64);
        let computed_hsum = {
            let mut zeroed = header;
            zeroed[64..72].fill(0);
            fnv1a64(&zeroed)
        };
        if stored_hsum != computed_hsum {
            // Distinguish "not a snapshot" from "snapshot with a damaged
            // header": magic first, then the digest.
            if &header[0..8] != MAGIC {
                let mut found = [0u8; 8];
                found.copy_from_slice(&header[0..8]);
                return Err(SnapError::BadMagic { found });
            }
            return Err(SnapError::HeaderCorrupt {
                stored: stored_hsum,
                computed: computed_hsum,
            });
        }
        if &header[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&header[0..8]);
            return Err(SnapError::BadMagic { found });
        }
        let version = get_u32(&header, 8);
        if version != FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion { found: version });
        }
        let mode = QuantMode::from_code(get_u32(&header, 12)).ok_or(SnapError::BadQuantMode {
            code: get_u32(&header, 12),
        })?;
        let dims = (
            get_u64(&header, 16) as usize,
            get_u64(&header, 24) as usize,
            get_u64(&header, 32) as usize,
        );
        let rank = get_u64(&header, 40) as usize;
        let payload_len = get_u64(&header, 48);
        let payload_sum = get_u64(&header, 56);

        let layout = Layout::derive(mode, dims, rank);
        if layout.len as u64 != payload_len {
            return Err(SnapError::DimsMismatch {
                derived: layout.len as u64,
                stored: payload_len,
            });
        }
        let expected_len = HEADER_LEN as u64 + payload_len;
        if actual_len != expected_len {
            return Err(SnapError::Truncated {
                expected: expected_len,
                actual: actual_len,
            });
        }

        let total = expected_len as usize;
        #[cfg(unix)]
        let buf = match map_file(&file, total) {
            Some(mapped) => mapped,
            None => {
                // mmap refused (unusual fs) — fall back to an owned read.
                let mut file = File::open(path)?;
                read_owned(&mut file, total)?
            }
        };
        #[cfg(not(unix))]
        let buf = {
            let mut file = File::open(path)?;
            read_owned(&mut file, total)?
        };

        if verify_payload {
            let computed = fnv1a64(&buf.bytes()[HEADER_LEN..]);
            if computed != payload_sum {
                return Err(SnapError::ChecksumMismatch {
                    stored: payload_sum,
                    computed,
                });
            }
        }

        Ok(SnapshotModel {
            buf,
            mode,
            dims,
            rank,
            layout,
        })
    }

    /// Storage mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// `(I, J, K)` dimensions — mirrors [`TcssModel::dims`].
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Embedding length `r` — mirrors [`TcssModel::rank`].
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Payload bytes (factor data; excludes the one-page header).
    pub fn payload_bytes(&self) -> usize {
        self.layout.len
    }

    /// Total file bytes (header + payload).
    pub fn file_bytes(&self) -> usize {
        HEADER_LEN + self.layout.len
    }

    // -- zero-copy section accessors ---------------------------------

    fn section_f32(&self, off: usize, n: usize) -> &[f32] {
        let bytes = &self.buf.bytes()[HEADER_LEN + off..HEADER_LEN + off + n * 4];
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0, "section misaligned");
        // SAFETY: the slice covers n*4 in-bounds bytes of the immutable
        // backing; sections sit at 64-byte offsets inside a page-aligned
        // (mmap) or 8-byte-aligned (owned Vec<u64>) buffer, so 4-byte
        // alignment holds. Any f32 bit pattern is a valid value.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), n) }
    }

    fn section_i16(&self, off: usize, n: usize) -> &[i16] {
        let bytes = &self.buf.bytes()[HEADER_LEN + off..HEADER_LEN + off + n * 2];
        debug_assert_eq!(bytes.as_ptr() as usize % 2, 0, "section misaligned");
        // SAFETY: as section_f32, with 2-byte alignment.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<i16>(), n) }
    }

    /// The factor-importance weights `h` (length `r`, always f32).
    pub fn h(&self) -> &[f32] {
        self.section_f32(self.layout.h, self.rank)
    }

    fn factor_rows_f32(&self, off: usize, rows: usize) -> &[f32] {
        self.section_f32(off, rows * self.rank)
    }

    fn factor_rows_i16(&self, off: usize, rows: usize) -> &[i16] {
        self.section_i16(off, rows * self.rank)
    }

    /// The POI factor `U²` as a flat row-major slice (`J × r`), for the
    /// batched f32 matmul. Panics in i16 mode.
    pub fn u2_f32(&self) -> &[f32] {
        assert_eq!(self.mode, QuantMode::F32, "u2_f32 on an i16 snapshot");
        self.factor_rows_f32(self.layout.u2, self.dims.1)
    }

    /// The POI factor `U²` as quantized rows plus per-row scales, for the
    /// batched i16 matmul. Panics in f32 mode.
    pub fn u2_i16(&self) -> (&[i16], &[f32]) {
        assert_eq!(self.mode, QuantMode::I16, "u2_i16 on an f32 snapshot");
        (
            self.factor_rows_i16(self.layout.u2, self.dims.1),
            self.section_f32(self.layout.u2_scales, self.dims.1),
        )
    }

    fn row_f32_into(&self, data_off: usize, scales_off: usize, row: usize, out: &mut Vec<f32>) {
        let r = self.rank;
        out.clear();
        match self.mode {
            QuantMode::F32 => {
                out.extend_from_slice(self.section_f32(data_off + row * r * 4, r));
            }
            QuantMode::I16 => {
                let q = self.section_i16(data_off + row * r * 2, r);
                let s = self.section_f32(scales_off + row * 4, 1)[0];
                out.resize(r, 0.0);
                kernels::dequant_i16(q, s, out);
            }
        }
    }

    /// The per-request weight vector `w = h ⊙ U¹ᵢ ⊙ U³ₖ` in f32, written
    /// into `out` (cleared first) — the compact counterpart of
    /// [`TcssModel::weight_vector_into`]. In i16 mode the U¹/U³ rows are
    /// dequantized on the fly (two `r`-long rows per request — `U²`, the
    /// big operand, never is).
    pub fn weight_vector_into(
        &self,
        user: usize,
        time: usize,
        scratch: &mut (Vec<f32>, Vec<f32>),
        out: &mut Vec<f32>,
    ) {
        let r = self.rank;
        let (ui, uk) = scratch;
        self.row_f32_into(self.layout.u1, self.layout.u1_scales, user, ui);
        self.row_f32_into(self.layout.u3, self.layout.u3_scales, time, uk);
        out.clear();
        out.resize(r, 0.0);
        kernels::mul3_f32(self.h(), ui, uk, out);
    }

    /// Scores for every POI at `(user, time)`, widened to f64 — the
    /// compact counterpart of [`TcssModel::scores_for`], and the
    /// per-request reference the batched path is bit-for-bit against
    /// (both evaluate `dot_f32` / `scale · dot_f32_i16` per element in
    /// the canonical lane order, then widen).
    pub fn scores_for(&self, user: usize, time: usize) -> Vec<f64> {
        let mut scratch = (Vec::new(), Vec::new());
        let mut w = Vec::new();
        self.weight_vector_into(user, time, &mut scratch, &mut w);
        let j = self.dims.1;
        let r = self.rank;
        match self.mode {
            QuantMode::F32 => {
                let u2 = self.u2_f32();
                (0..j)
                    .map(|p| f64::from(kernels::dot_f32(&w, &u2[p * r..(p + 1) * r])))
                    .collect()
            }
            QuantMode::I16 => {
                let (q2, s2) = self.u2_i16();
                (0..j)
                    .map(|p| f64::from(s2[p] * kernels::dot_f32_i16(&w, &q2[p * r..(p + 1) * r])))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_core::random_init;

    fn model(seed: u64) -> TcssModel {
        let (u1, u2, u3) = random_init((5, 17, 4), 6, seed);
        let mut m = TcssModel::new(u1, u2, u3);
        m.h = (0..6).map(|t| 0.5 + 0.1 * t as f64).collect();
        m
    }

    fn write_to(dir: &Path, name: &str, m: &TcssModel, mode: QuantMode) -> std::path::PathBuf {
        let path = dir.join(name);
        write_snapshot(m, mode, &path).expect("write snapshot");
        path
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tcss-snap-unit-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_f32_preserves_factors_to_f32_precision() {
        let dir = tmpdir("rt32");
        let m = model(3);
        let path = write_to(&dir, "m.tcsssnap", &m, QuantMode::F32);
        let snap = SnapshotModel::open(&path).expect("open");
        assert_eq!(snap.dims(), m.dims());
        assert_eq!(snap.rank(), m.rank());
        assert_eq!(snap.mode(), QuantMode::F32);
        for (t, &h) in m.h.iter().enumerate() {
            assert_eq!(snap.h()[t].to_bits(), (h as f32).to_bits());
        }
        let u2 = snap.u2_f32();
        for j in 0..m.dims().1 {
            for t in 0..m.rank() {
                assert_eq!(
                    u2[j * m.rank() + t].to_bits(),
                    (m.u2.get(j, t) as f32).to_bits()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn i16_dequantization_error_is_within_scale_bound() {
        let dir = tmpdir("rt16");
        let m = model(9);
        let path = write_to(&dir, "m.tcsssnap", &m, QuantMode::I16);
        let snap = SnapshotModel::open(&path).expect("open");
        let (q2, s2) = snap.u2_i16();
        let r = m.rank();
        for j in 0..m.dims().1 {
            let s = f64::from(s2[j]);
            for t in 0..r {
                let deq = f64::from(q2[j * r + t]) * s;
                // |v − s·round(v/s)| ≤ s/2 plus f32 scale rounding slack.
                assert!(
                    (deq - m.u2.get(j, t)).abs() <= 0.5001 * s.max(1e-12),
                    "row {j} entry {t}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_row_quantizes_exactly() {
        let mut out = vec![7i16; 4];
        let s = quantize_row(&[0.0; 4], &mut out);
        assert_eq!(s, 0.0);
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    fn scores_for_agrees_with_f64_reference_loosely() {
        let dir = tmpdir("agree");
        let m = model(21);
        for mode in [QuantMode::F32, QuantMode::I16] {
            let path = write_to(&dir, &format!("m-{mode}.tcsssnap"), &m, mode);
            let snap = SnapshotModel::open(&path).expect("open");
            let got = snap.scores_for(2, 1);
            let want = m.scores_for(2, 1);
            let tol = match mode {
                QuantMode::F32 => 1e-5,
                QuantMode::I16 => 1e-2,
            };
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= tol * (1.0 + w.abs()), "{mode}: {g} vs {w}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_fast_catches_truncation() {
        let dir = tmpdir("fast");
        let m = model(4);
        let path = write_to(&dir, "m.tcsssnap", &m, QuantMode::F32);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            SnapshotModel::open_fast(&path),
            Err(SnapError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn not_a_snapshot_is_bad_magic() {
        let dir = tmpdir("magic");
        let path = dir.join("bogus.tcsssnap");
        std::fs::write(&path, vec![0x41u8; HEADER_LEN + 64]).unwrap();
        assert!(matches!(
            SnapshotModel::open(&path),
            Err(SnapError::BadMagic { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
