//! Deterministic transport-level fault injection for the serving chaos
//! suites.
//!
//! The mirror of [`tcss_core::fault`] for the wire path: production code
//! never constructs these faults; the harness exists so the resilience
//! contracts of the `poll(2)` front end — typed truncation errors, the
//! idle reaper, panic isolation, reconnect/retry — can be driven through
//! real socket misbehaviour in tests instead of being trusted on
//! inspection.
//!
//! A [`TransportFaultPlan`] keys each [`TransportFault`] to a
//! **request index** (0-based, counted per transport), and every trigger
//! is consumed at most once — exactly the discipline of
//! `tcss_core::fault::FaultPlan`'s epoch-keyed triggers, so failing
//! chaos runs replay identically. [`FaultyTransport`] then behaves like
//! a [`NetClient`](crate::net::NetClient) whose send path detours
//! through the armed fault:
//!
//! * [`TransportFault::StallMidFrame`] — write the first half of the
//!   request frame, go silent for the configured pause, then finish.
//!   Exercises the decoder's byte-boundary resilience and (when the
//!   pause exceeds the server's idle timeout) the reaper.
//! * [`TransportFault::PartialWrite`] — write only a prefix of the
//!   frame, then half-close. The server must answer a typed `Truncated`
//!   error, never hang waiting for the rest.
//! * [`TransportFault::Reset`] — send the request, then abort the
//!   connection with an RST (SO_LINGER 0). The server must absorb the
//!   reset and keep serving other connections.
//! * [`TransportFault::CorruptPayloadByte`] — XOR one byte of the
//!   request *payload* (framing left intact), modelling in-flight
//!   corruption. The server must answer a typed error (`Malformed` when
//!   the kind byte is hit) or treat the bytes as the different-but-valid
//!   request they now encode — never crash, never mis-frame later
//!   requests.
//!
//! Faults that kill the transport ([`PartialWrite`](TransportFault) —
//! after its typed answer is read — and [`Reset`](TransportFault))
//! leave the shim disconnected; [`FaultyTransport::reconnect`] restores
//! a clean connection while the request counter (and therefore the
//! remaining plan) keeps advancing.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use crate::net::client::ClientError;
use crate::net::frame::{self, FrameDecoder, DEFAULT_MAX_FRAME_LEN};
use crate::net::proto::{self, Request, RequestBody, Response};

/// One injectable socket misbehaviour, keyed by request index in a
/// [`TransportFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Write the frame's first half, stay silent for `pause_ms`, then
    /// write the rest. The request still completes; the server must
    /// neither mis-frame it nor (for pauses under its idle timeout)
    /// reap the connection.
    StallMidFrame {
        /// Silence between the two halves, in milliseconds.
        pause_ms: u64,
    },
    /// Write only the frame's first `bytes` bytes, then half-close the
    /// write side. The server must answer a typed `Truncated` error
    /// (readable via `recv`) and then close; the transport is dead for
    /// further sends (reconnect required).
    PartialWrite {
        /// Prefix length actually written (clamped to the frame).
        bytes: usize,
    },
    /// Send the request, then abort with an RST (`SO_LINGER` 0). Kills
    /// the transport (reconnect required).
    Reset,
    /// XOR the payload byte at `offset` (mod payload length) with
    /// `mask` before framing; the frame itself stays well-formed.
    /// Offset 0 is the request kind byte — corrupting it
    /// deterministically yields a typed `Malformed` answer addressed to
    /// the salvaged correlation id (bytes 1..9).
    CorruptPayloadByte {
        /// Byte position within the encoded payload.
        offset: usize,
        /// Nonzero XOR mask.
        mask: u8,
    },
}

/// A schedule of transport faults for one connection's request stream,
/// keyed by 0-based request index. Each trigger fires at most once —
/// the consumed-once discipline of `tcss_core::fault::FaultPlan`.
#[derive(Debug, Default)]
pub struct TransportFaultPlan {
    faults: HashMap<usize, TransportFault>,
}

impl TransportFaultPlan {
    /// No faults: the shim behaves like a plain client.
    pub fn none() -> Self {
        TransportFaultPlan::default()
    }

    /// Arm `fault` for the request with 0-based index `request_index`.
    /// Re-arming the same index replaces the previous fault.
    pub fn fault_at(mut self, request_index: usize, fault: TransportFault) -> Self {
        if let TransportFault::CorruptPayloadByte { mask, .. } = fault {
            assert_ne!(mask, 0, "a zero mask would not corrupt anything");
        }
        self.faults.insert(request_index, fault);
        self
    }

    /// Triggers not yet consumed (the suite asserts this reaches 0).
    pub fn remaining(&self) -> usize {
        self.faults.len()
    }

    fn take(&mut self, request_index: usize) -> Option<TransportFault> {
        self.faults.remove(&request_index)
    }
}

/// A wire-protocol client whose send path injects the faults of a
/// [`TransportFaultPlan`]; see the module docs for the fault catalogue.
#[derive(Debug)]
pub struct FaultyTransport {
    addr: SocketAddr,
    read_timeout: Duration,
    stream: Option<TcpStream>,
    decoder: FrameDecoder,
    next_id: u64,
    /// 0-based index of the next request sent; keys into the plan.
    request_index: usize,
    plan: TransportFaultPlan,
}

impl FaultyTransport {
    /// Connect to `addr`; `read_timeout` bounds every blocking read so
    /// a hung server fails the suite typed instead of wedging it.
    pub fn connect(
        addr: SocketAddr,
        plan: TransportFaultPlan,
        read_timeout: Duration,
    ) -> io::Result<Self> {
        let stream = open_stream(addr, read_timeout)?;
        Ok(FaultyTransport {
            addr,
            read_timeout,
            stream: Some(stream),
            decoder: FrameDecoder::new(DEFAULT_MAX_FRAME_LEN),
            next_id: 1,
            request_index: 0,
            plan,
        })
    }

    /// Triggers not yet consumed from the plan.
    pub fn faults_remaining(&self) -> usize {
        self.plan.remaining()
    }

    /// True while the underlying connection is usable (a `PartialWrite`
    /// or `Reset` fault leaves it dead until [`FaultyTransport::reconnect`]).
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Open a fresh connection after a transport-killing fault. The
    /// request counter keeps advancing, so the remaining plan stays
    /// keyed to the same global request indices.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Some(open_stream(self.addr, self.read_timeout)?);
        self.decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        Ok(())
    }

    /// Send one `Recommend` through whatever fault is armed for this
    /// request index. Returns the correlation id and the fault that was
    /// applied (`None` for a clean send). After a transport-killing
    /// fault the send itself has happened (prefix or full frame), but
    /// the connection is gone — [`FaultyTransport::recv`] will fail
    /// typed and [`FaultyTransport::reconnect`] restores service.
    pub fn send_recommend(
        &mut self,
        user: u64,
        time: u64,
        n: u32,
    ) -> io::Result<(u64, Option<TransportFault>)> {
        let id = self.next_id;
        self.next_id += 1;
        let idx = self.request_index;
        self.request_index += 1;
        let fault = self.plan.take(idx);

        let mut payload = proto::encode_request(&Request {
            id,
            body: RequestBody::Recommend { user, time, n },
        });
        if let Some(TransportFault::CorruptPayloadByte { offset, mask }) = fault {
            let at = offset % payload.len();
            payload[at] ^= mask;
        }
        let framed = frame::encode_frame(&payload);

        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "transport killed"))?;
        match fault {
            Some(TransportFault::StallMidFrame { pause_ms }) => {
                let half = framed.len() / 2;
                stream.write_all(&framed[..half])?;
                stream.flush()?;
                std::thread::sleep(Duration::from_millis(pause_ms));
                stream.write_all(&framed[half..])?;
            }
            Some(TransportFault::PartialWrite { bytes }) => {
                // Half-close only the write side: the read side stays
                // open so the server's typed `Truncated` answer (sent
                // before it closes) is still observable via `recv`.
                let keep = bytes.min(framed.len().saturating_sub(1));
                stream.write_all(&framed[..keep])?;
                stream.flush()?;
                let _ = stream.shutdown(Shutdown::Write);
            }
            Some(TransportFault::Reset) => {
                stream.write_all(&framed)?;
                stream.flush()?;
                abort_with_rst(self.stream.take().expect("stream present"));
            }
            _ => stream.write_all(&framed)?,
        }
        Ok((id, fault))
    }

    /// Read the next response frame (arrival order). Fails typed on a
    /// dead transport, timeout, or server close — never hangs past the
    /// read timeout.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        use std::io::Read;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    return proto::decode_response(&payload).map_err(ClientError::Wire)
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Frame(e)),
            }
            let stream = self.stream.as_mut().ok_or(ClientError::ServerClosed)?;
            match stream.read(&mut buf) {
                Ok(0) => {
                    self.stream = None;
                    return match self.decoder.finish() {
                        Ok(()) => Err(ClientError::ServerClosed),
                        Err(e) => Err(ClientError::Frame(e)),
                    };
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

fn open_stream(addr: SocketAddr, read_timeout: Duration) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(read_timeout))?;
    Ok(stream)
}

// ---------------------------------------------------------------------------
// RST injection: closing with SO_LINGER {on, 0} makes the kernel send a
// reset instead of an orderly FIN. std's TcpStream::set_linger is
// unstable, so the sockopt is set by hand (std already links libc — the
// same posture as the server's `poll` declaration).

#[cfg(target_os = "linux")]
fn abort_with_rst(stream: TcpStream) {
    use std::os::fd::AsRawFd;

    #[repr(C)]
    struct Linger {
        l_onoff: std::ffi::c_int,
        l_linger: std::ffi::c_int,
    }
    const SOL_SOCKET: std::ffi::c_int = 1;
    const SO_LINGER: std::ffi::c_int = 13;
    extern "C" {
        fn setsockopt(
            fd: std::ffi::c_int,
            level: std::ffi::c_int,
            optname: std::ffi::c_int,
            optval: *const std::ffi::c_void,
            optlen: u32,
        ) -> std::ffi::c_int;
    }
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    // SAFETY: fd is live (we own `stream`), and optval/optlen describe a
    // valid repr(C) linger struct for the duration of the call.
    unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        );
    }
    drop(stream); // close(2) now aborts with RST
}

#[cfg(not(target_os = "linux"))]
fn abort_with_rst(stream: TcpStream) {
    // Portable fallback: an orderly close. The chaos suite's assertions
    // (typed error or correct answer, no hangs) hold either way.
    drop(stream);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_exactly_once_and_in_index_order() {
        let mut plan = TransportFaultPlan::none()
            .fault_at(2, TransportFault::Reset)
            .fault_at(0, TransportFault::PartialWrite { bytes: 3 });
        assert_eq!(plan.remaining(), 2);
        assert_eq!(
            plan.take(0),
            Some(TransportFault::PartialWrite { bytes: 3 })
        );
        assert_eq!(plan.take(0), None, "trigger must be consumed");
        assert_eq!(plan.take(1), None);
        assert_eq!(plan.take(2), Some(TransportFault::Reset));
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "zero mask")]
    fn zero_corruption_mask_is_rejected() {
        let _ = TransportFaultPlan::none()
            .fault_at(0, TransportFault::CorruptPayloadByte { offset: 8, mask: 0 });
    }
}
