//! Length-prefixed binary framing.
//!
//! Every message on the wire is one *frame*: a 4-byte little-endian
//! payload length followed by exactly that many payload bytes. The codec
//! is byte-boundary agnostic — [`FrameDecoder`] accepts input in whatever
//! fragments the kernel delivers (one byte at a time, a header split
//! across reads, several frames in one read) and yields complete payloads
//! in order. The framing layer knows nothing about payload contents;
//! message semantics live in [`crate::net::proto`].
//!
//! Failure posture (the protocol-proptest contract):
//!
//! * a length prefix above the configured cap is a typed
//!   [`FrameError::Oversized`] *before* any payload is buffered — a
//!   hostile 4 GiB header cannot make the server allocate;
//! * a connection that ends mid-frame is a typed
//!   [`FrameError::TruncatedEof`] from [`FrameDecoder::finish`];
//! * no input sequence panics or leaves the decoder wedged: after an
//!   error the decoder stays in the error state and keeps reporting it
//!   (the connection is closed by the caller, never silently resynced).

/// Bytes in the length prefix.
pub const HEADER_LEN: usize = 4;

/// Default maximum payload length a decoder accepts (1 MiB).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Typed framing errors. These are connection-fatal: framing corruption
/// has no safe resync point, so the caller responds (when possible) and
/// closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the decoder's configured cap.
    Oversized {
        /// Length the prefix declared.
        declared: u32,
        /// Maximum the decoder accepts.
        max: u32,
    },
    /// The stream ended (EOF) with a partial frame buffered.
    TruncatedEof {
        /// Bytes of the unfinished frame (header + partial payload).
        buffered: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::TruncatedEof { buffered } => {
                write!(f, "stream ended mid-frame with {buffered} byte(s) buffered")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode `payload` as one frame (length prefix + payload).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    write_frame(&mut out, payload);
    out
}

/// Append one frame for `payload` to `out` (the allocation-reusing form
/// the server's per-connection write buffers use).
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("payload fits a u32 length prefix");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame decoder over an append-only byte buffer.
///
/// Feed raw bytes with [`FrameDecoder::push`], drain complete payloads
/// with [`FrameDecoder::next_frame`], and report EOF with
/// [`FrameDecoder::finish`] so a trailing partial frame becomes a typed
/// error instead of silent truncation.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    max_frame_len: u32,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// Decoder accepting payloads up to `max_frame_len` bytes.
    pub fn new(max_frame_len: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame_len,
            poisoned: None,
        }
    }

    /// Append raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is consumed.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next complete payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes". An `Err` poisons the decoder:
    /// every later call reports the same error (framing has no resync).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(avail[..HEADER_LEN].try_into().expect("4 bytes"));
        if declared > self.max_frame_len {
            let e = FrameError::Oversized {
                declared,
                max: self.max_frame_len,
            };
            self.poisoned = Some(e);
            return Err(e);
        }
        let total = HEADER_LEN + declared as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..total].to_vec();
        self.pos += total;
        Ok(Some(payload))
    }

    /// Signal EOF: a partial frame still buffered is a typed truncation
    /// error; a clean frame boundary is `Ok`.
    pub fn finish(&self) -> Result<(), FrameError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        let buffered = self.buffered();
        if buffered > 0 {
            Err(FrameError::TruncatedEof { buffered })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_roundtrip() {
        let mut d = FrameDecoder::new(DEFAULT_MAX_FRAME_LEN);
        d.push(&encode_frame(b"hello"));
        assert_eq!(d.next_frame().unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(d.next_frame().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut d = FrameDecoder::new(64);
        let wire = encode_frame(b"abc");
        for &b in &wire {
            d.push(&[b]);
        }
        assert_eq!(d.next_frame().unwrap().as_deref(), Some(&b"abc"[..]));
    }

    #[test]
    fn oversized_header_is_typed_and_sticky() {
        let mut d = FrameDecoder::new(8);
        d.push(&encode_frame(&[0u8; 9]));
        let e = d.next_frame().unwrap_err();
        assert_eq!(
            e,
            FrameError::Oversized {
                declared: 9,
                max: 8
            }
        );
        assert_eq!(d.next_frame().unwrap_err(), e, "poisoned decoder sticks");
        assert_eq!(d.finish().unwrap_err(), e);
    }

    #[test]
    fn eof_mid_frame_is_truncation() {
        let mut d = FrameDecoder::new(64);
        let wire = encode_frame(b"abcdef");
        d.push(&wire[..wire.len() - 2]);
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(matches!(
            d.finish().unwrap_err(),
            FrameError::TruncatedEof { buffered: 8 }
        ));
    }

    #[test]
    fn empty_payload_frames_are_legal_at_frame_layer() {
        let mut d = FrameDecoder::new(64);
        d.push(&encode_frame(b""));
        assert_eq!(d.next_frame().unwrap().as_deref(), Some(&b""[..]));
        d.finish().unwrap();
    }
}
