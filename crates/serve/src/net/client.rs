//! A small blocking client for the TCSS wire protocol.
//!
//! Used by the `tcss query` CLI, the protocol/chaos test suites and the
//! `bench_serve_net` load generator. The client is deliberately simple —
//! one blocking socket, the shared [`FrameDecoder`] — but supports
//! pipelining: [`NetClient::send_recommend`] queues without waiting and
//! [`NetClient::read_response`] drains answers in arrival order, with
//! correlation ids matching them back to requests. Every read honours a
//! configurable timeout ([`ClientConfig::read_timeout`]) so a wedged
//! server yields a typed error instead of a hung test (the CI job's
//! hung-server detection in miniature).
//!
//! # Retry and backoff
//!
//! [`NetClient::recommend_with_retry`] layers resilience on top of the
//! raw round trip: typed `Overloaded` responses and *transient* I/O
//! failures (connection reset/aborted, broken pipe, read timeout, a
//! clean server close) are retried up to [`ClientConfig::retries`] times
//! with **deterministic capped exponential backoff** — delay for attempt
//! `k` is `min(backoff_base · 2ᵏ, backoff_cap)`, no jitter, matching the
//! repo's reproducibility posture (two identical runs back off
//! identically). Transport-level failures reconnect before retrying;
//! `Overloaded` retries reuse the healthy connection. A per-call
//! deadline ([`ClientConfig::call_deadline`]) bounds the whole loop,
//! sleeps included: when it expires the call returns a typed
//! [`ClientError::DeadlineExceeded`] instead of another attempt.
//! Server-side `DeadlineExceeded`/`Internal` errors are retried too —
//! the server guarantees such requests were never scored, so a retry
//! cannot double-apply anything. Malformed server bytes (framing or
//! protocol decode failures) are **not** retried: they indicate
//! corruption, not load, and deserve a loud failure.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::net::frame::{self, FrameDecoder, FrameError, DEFAULT_MAX_FRAME_LEN};
use crate::net::proto::{self, ErrorCode, Request, RequestBody, Response, ResponseBody, WireError};

/// Typed client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The server's bytes failed framing.
    Frame(FrameError),
    /// The server's payload failed decoding.
    Wire(WireError),
    /// The server closed the connection before answering.
    ServerClosed,
    /// The server answered with a body the call cannot use (e.g. a
    /// `Ranking` where a `Pong` was expected).
    Unexpected(Response),
    /// The per-call deadline ([`ClientConfig::call_deadline`]) expired
    /// before a usable answer arrived.
    DeadlineExceeded {
        /// Time spent in the call when the deadline fired.
        elapsed: Duration,
    },
    /// Every retry attempt failed; `last` is the final attempt's error.
    RetriesExhausted {
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// The error from the last attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error from server: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error from server: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Unexpected(resp) => {
                write!(f, "unexpected response body for id {}", resp.id)
            }
            ClientError::DeadlineExceeded { elapsed } => {
                write!(f, "call deadline exceeded after {} ms", elapsed.as_millis())
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Client tuning knobs. `Default` then override:
///
/// ```
/// use std::time::Duration;
/// use tcss_serve::net::ClientConfig;
/// let cfg = ClientConfig {
///     read_timeout: Duration::from_millis(500),
///     retries: 3,
///     ..ClientConfig::default()
/// };
/// ```
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on every blocking socket read; a wedged server surfaces as
    /// `ClientError::Io(TimedOut/WouldBlock)` instead of a hang.
    pub read_timeout: Duration,
    /// Maximum accepted response frame length in bytes.
    pub max_frame_len: u32,
    /// Extra attempts after the first for
    /// [`NetClient::recommend_with_retry`] (0 = single attempt).
    pub retries: u32,
    /// Backoff before retry attempt `k` is `min(backoff_base · 2ᵏ,
    /// backoff_cap)` — deterministic, no jitter.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Per-call wall-clock bound on the whole retry loop (attempts and
    /// backoff sleeps included). `None` relies on `read_timeout` ×
    /// attempts alone.
    pub call_deadline: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(10),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            retries: 0,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            call_deadline: None,
        }
    }
}

/// Retry-loop observability: how hard the client had to work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Attempts beyond the first across all `recommend_with_retry` calls.
    pub retries: u64,
    /// Successful transport reconnects performed by the retry loop.
    pub reconnects: u64,
}

/// Blocking wire-protocol client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    /// Responses read while waiting for a different correlation id.
    stash: HashMap<u64, Response>,
    addr: SocketAddr,
    cfg: ClientConfig,
    stats: ClientStats,
}

impl NetClient {
    /// Connect with the default config (10-second read timeout, no
    /// retries); see [`NetClient::connect_with_config`].
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_config(addr, ClientConfig::default())
    }

    /// Connect with only the read timeout overridden.
    pub fn connect_with_timeout(addr: SocketAddr, read_timeout: Duration) -> io::Result<Self> {
        Self::connect_with_config(
            addr,
            ClientConfig {
                read_timeout,
                ..ClientConfig::default()
            },
        )
    }

    /// Connect with full [`ClientConfig`] control.
    pub fn connect_with_config(addr: SocketAddr, cfg: ClientConfig) -> io::Result<Self> {
        let stream = Self::open_stream(addr, &cfg)?;
        Ok(NetClient {
            stream,
            decoder: FrameDecoder::new(cfg.max_frame_len),
            next_id: 1,
            stash: HashMap::new(),
            addr,
            cfg,
            stats: ClientStats::default(),
        })
    }

    fn open_stream(addr: SocketAddr, cfg: &ClientConfig) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        Ok(stream)
    }

    /// The config this client was built with.
    pub fn config(&self) -> &ClientConfig {
        &self.cfg
    }

    /// Retry-loop counters accumulated so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Replace the transport with a fresh connection to the same
    /// address. Decoder state and stashed responses from the old
    /// connection are discarded (their correlation ids can never be
    /// answered again); the id counter keeps advancing so ids stay
    /// unique across reconnects.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Self::open_stream(self.addr, &self.cfg)?;
        self.decoder = FrameDecoder::new(self.cfg.max_frame_len);
        self.stash.clear();
        Ok(())
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send a `Recommend` without waiting (pipelining); returns the
    /// correlation id to match against [`NetClient::read_response`].
    pub fn send_recommend(&mut self, user: u64, time: u64, n: u32) -> io::Result<u64> {
        let id = self.fresh_id();
        let payload = proto::encode_request(&Request {
            id,
            body: RequestBody::Recommend { user, time, n },
        });
        self.stream.write_all(&frame::encode_frame(&payload))?;
        Ok(id)
    }

    /// Send raw bytes verbatim — the protocol tests' malformed-input
    /// injection point.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Half-close the write side (EOF to the server, reads still open).
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Next response in arrival order (stashed responses first).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        if let Some(&id) = self.stash.keys().next() {
            return Ok(self.stash.remove(&id).expect("key just seen"));
        }
        self.read_from_wire()
    }

    fn read_from_wire(&mut self) -> Result<Response, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    return proto::decode_response(&payload).map_err(ClientError::Wire)
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Frame(e)),
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return match self.decoder.finish() {
                        Ok(()) => Err(ClientError::ServerClosed),
                        Err(e) => Err(ClientError::Frame(e)),
                    }
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Response for a specific correlation id; other responses read on
    /// the way are stashed for later [`NetClient::read_response`] calls.
    pub fn read_response_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(resp) = self.stash.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.read_from_wire()?;
            if resp.id == id {
                return Ok(resp);
            }
            self.stash.insert(resp.id, resp);
        }
    }

    /// Blocking request/response round trip (single attempt, no retry).
    pub fn recommend(&mut self, user: u64, time: u64, n: u32) -> Result<Response, ClientError> {
        let id = self.send_recommend(user, time, n)?;
        self.read_response_for(id)
    }

    /// Round trip with the full resilience loop: retries `Overloaded`,
    /// retry-safe server errors and transient transport failures with
    /// deterministic capped exponential backoff (reconnecting when the
    /// transport died), bounded by [`ClientConfig::call_deadline`]. See
    /// the module docs for the exact retryability rules.
    pub fn recommend_with_retry(
        &mut self,
        user: u64,
        time: u64,
        n: u32,
    ) -> Result<Response, ClientError> {
        let t0 = Instant::now();
        let attempts = self.cfg.retries.saturating_add(1);
        let mut last: Option<ClientError> = None;
        let mut need_reconnect = false;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let shift = (attempt - 1).min(32);
                let delay = self
                    .cfg
                    .backoff_base
                    .saturating_mul(1u32 << shift)
                    .min(self.cfg.backoff_cap);
                if let Some(deadline) = self.cfg.call_deadline {
                    // Never sleep past the deadline; expire typed.
                    let elapsed = t0.elapsed();
                    if elapsed + delay >= deadline {
                        return Err(ClientError::DeadlineExceeded { elapsed });
                    }
                }
                std::thread::sleep(delay);
            }
            if let Some(deadline) = self.cfg.call_deadline {
                let elapsed = t0.elapsed();
                if elapsed >= deadline {
                    return Err(ClientError::DeadlineExceeded { elapsed });
                }
            }
            if need_reconnect {
                match self.reconnect() {
                    Ok(()) => {
                        self.stats.reconnects += 1;
                        need_reconnect = false;
                    }
                    Err(e) => {
                        last = Some(ClientError::Io(e));
                        continue;
                    }
                }
            }
            match self.recommend(user, time, n) {
                Ok(resp) => match &resp.body {
                    // Shed load and retry-safe server errors: back off on
                    // the same healthy connection.
                    ResponseBody::Overloaded { .. } => last = Some(ClientError::Unexpected(resp)),
                    ResponseBody::Error {
                        code: ErrorCode::DeadlineExceeded | ErrorCode::Internal,
                        ..
                    } => last = Some(ClientError::Unexpected(resp)),
                    _ => return Ok(resp),
                },
                Err(e) if Self::is_transient(&e) => {
                    need_reconnect = true;
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Transport failures worth a reconnect-and-retry. Framing/decoding
    /// errors are deliberately excluded: corrupted server bytes are a
    /// bug, not load.
    fn is_transient(err: &ClientError) -> bool {
        match err {
            ClientError::ServerClosed => true,
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// Liveness round trip; `Ok` only on a `Pong` echo.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        let payload = proto::encode_request(&Request {
            id,
            body: RequestBody::Ping,
        });
        self.stream.write_all(&frame::encode_frame(&payload))?;
        let resp = self.read_response_for(id)?;
        match &resp.body {
            ResponseBody::Pong => Ok(()),
            _ => Err(ClientError::Unexpected(resp)),
        }
    }
}
