//! A small blocking client for the TCSS wire protocol.
//!
//! Used by the `tcss query` CLI, the protocol/chaos test suites and the
//! `bench_serve_net` load generator. The client is deliberately simple —
//! one blocking socket, the shared [`FrameDecoder`] — but supports
//! pipelining: [`NetClient::send_recommend`] queues without waiting and
//! [`NetClient::read_response`] drains answers in arrival order, with
//! correlation ids matching them back to requests. Every read honours a
//! configurable timeout so a wedged server yields a typed error instead
//! of a hung test (the CI job's hung-server detection in miniature).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::net::frame::{self, FrameDecoder, FrameError, DEFAULT_MAX_FRAME_LEN};
use crate::net::proto::{self, Request, RequestBody, Response, ResponseBody, WireError};

/// Typed client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The server's bytes failed framing.
    Frame(FrameError),
    /// The server's payload failed decoding.
    Wire(WireError),
    /// The server closed the connection before answering.
    ServerClosed,
    /// The server answered with a body the call cannot use (e.g. a
    /// `Ranking` where a `Pong` was expected).
    Unexpected(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error from server: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error from server: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Unexpected(resp) => {
                write!(f, "unexpected response body for id {}", resp.id)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Blocking wire-protocol client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_id: u64,
    /// Responses read while waiting for a different correlation id.
    stash: HashMap<u64, Response>,
}

impl NetClient {
    /// Connect with a 10-second read timeout (see
    /// [`NetClient::connect_with_timeout`]).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connect; `read_timeout` bounds every blocking read so a hung
    /// server surfaces as `ClientError::Io(TimedOut/WouldBlock)`.
    pub fn connect_with_timeout(addr: SocketAddr, read_timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(NetClient {
            stream,
            decoder: FrameDecoder::new(DEFAULT_MAX_FRAME_LEN),
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send a `Recommend` without waiting (pipelining); returns the
    /// correlation id to match against [`NetClient::read_response`].
    pub fn send_recommend(&mut self, user: u64, time: u64, n: u32) -> io::Result<u64> {
        let id = self.fresh_id();
        let payload = proto::encode_request(&Request {
            id,
            body: RequestBody::Recommend { user, time, n },
        });
        self.stream.write_all(&frame::encode_frame(&payload))?;
        Ok(id)
    }

    /// Send raw bytes verbatim — the protocol tests' malformed-input
    /// injection point.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Half-close the write side (EOF to the server, reads still open).
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Next response in arrival order (stashed responses first).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        if let Some(&id) = self.stash.keys().next() {
            return Ok(self.stash.remove(&id).expect("key just seen"));
        }
        self.read_from_wire()
    }

    fn read_from_wire(&mut self) -> Result<Response, ClientError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => {
                    return proto::decode_response(&payload).map_err(ClientError::Wire)
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Frame(e)),
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return match self.decoder.finish() {
                        Ok(()) => Err(ClientError::ServerClosed),
                        Err(e) => Err(ClientError::Frame(e)),
                    }
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Response for a specific correlation id; other responses read on
    /// the way are stashed for later [`NetClient::read_response`] calls.
    pub fn read_response_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(resp) = self.stash.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.read_from_wire()?;
            if resp.id == id {
                return Ok(resp);
            }
            self.stash.insert(resp.id, resp);
        }
    }

    /// Blocking request/response round trip.
    pub fn recommend(&mut self, user: u64, time: u64, n: u32) -> Result<Response, ClientError> {
        let id = self.send_recommend(user, time, n)?;
        self.read_response_for(id)
    }

    /// Liveness round trip; `Ok` only on a `Pong` echo.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        let payload = proto::encode_request(&Request {
            id,
            body: RequestBody::Ping,
        });
        self.stream.write_all(&frame::encode_frame(&payload))?;
        let resp = self.read_response_for(id)?;
        match &resp.body {
            ResponseBody::Pong => Ok(()),
            _ => Err(ClientError::Unexpected(resp)),
        }
    }
}
