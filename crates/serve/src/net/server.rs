//! The wire-protocol serving front end: a from-scratch `poll(2)`
//! readiness loop over [`ServingEngine`].
//!
//! No tokio, no mio — matching the workspace's no-external-deps posture,
//! the event loop is built directly on non-blocking sockets and the
//! `poll` syscall (declared by hand; std already links libc). The design
//! is a small thread-per-core layout:
//!
//! * **one acceptor thread** owns the listener and hands fresh
//!   connections round-robin to workers through a mutexed inbox plus a
//!   `UnixStream` wake pipe (the self-pipe trick — a worker parked in
//!   `poll` wakes the moment a byte lands on its pipe);
//! * **N worker threads** each run an independent readiness loop over
//!   their own connections: non-blocking reads feed the
//!   [`FrameDecoder`](crate::net::frame::FrameDecoder), every complete
//!   request decoded in one readiness pass is batched *across
//!   connections* into packed [`ServingEngine::recommend_batch_pinned`]
//!   calls (the same `W · U²ᵀ` batching the in-process path uses), and
//!   responses are written back non-blockingly with `POLLOUT`
//!   re-arming on short writes.
//!
//! **Admission control** — every decoded `Recommend` must win a permit
//! from the shared [`AdmissionGate`] before entering the scoring batch;
//! a full gate answers with a typed `Overloaded` response immediately.
//! Load is shed deterministically at the protocol level, never by
//! letting clients time out.
//!
//! **Model swap under load** — workers score through the engine's
//! [`ModelHandle`](crate::ModelHandle) pin: each batch works on the
//! snapshot it pinned and stamps its responses with that snapshot's
//! version, so a concurrent [`ServingEngine::swap_model`] never tears a
//! response and the version field makes swap behaviour observable (and
//! chaos-testable) from the client side.
//!
//! **Determinism** — a `Ranking` response is byte-for-byte the encoding
//! of the in-process `recommend` answer on the same snapshot: scores
//! travel as `f64::to_bits`, so the repo's bitwise parity contract
//! extends across the wire.
//!
//! # Resilience (failure model; DESIGN.md §5g)
//!
//! The front end's failure behaviour is typed and bounded, never
//! emergent:
//!
//! * **Per-request deadlines** — every decoded `Recommend` carries its
//!   decode timestamp; if [`ServerConfig::request_deadline`] elapses
//!   before the request enters a scoring batch it is answered with a
//!   typed `DeadlineExceeded` error instead of a late ranking (the
//!   request is *not* scored, so retrying is safe). Queue wait is
//!   recorded per request into the `queue_wait_ns` histogram whether or
//!   not a deadline is configured.
//! * **Idle-connection reaper** — a peer that goes silent (including one
//!   stalled mid-frame) past [`ServerConfig::idle_timeout`] is closed by
//!   the readiness loop itself, so abandoned sockets cannot pin fds or
//!   half-frame decoder state forever. Reaps are counted in
//!   [`NetMetrics::reaped_idle`].
//! * **Panic isolation** — batch execution runs under `catch_unwind`:
//!   a panic while scoring answers every request of that batch with a
//!   typed `Internal` error and the connection and worker survive. All
//!   engine-side locks recover from poisoning (`into_inner`), so a
//!   panicked batch cannot wedge later ones. If a panic ever escapes the
//!   readiness loop itself, an in-thread supervisor respawns the loop
//!   with fresh state (its connections close; the worker keeps serving) —
//!   counted in [`NetMetrics::worker_restarts`].
//! * **Graceful drain** — [`ServerHandle::drain`] stops accepting,
//!   lets in-flight batches finish, flushes every queued response,
//!   half-closes each connection (FIN after the last flushed byte) and
//!   waits for the peer's EOF, so a draining server never tears a frame.
//!   Past the timeout the remaining connections are force-closed.
//!   `Drop` delegates to a bounded drain, so an implicit drop cannot
//!   abandon queued-but-unflushed responses.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::net::admission::{AdmissionGate, Permit};
use crate::net::frame::{self, FrameDecoder, FrameError, DEFAULT_MAX_FRAME_LEN};
use crate::net::proto::{self, ErrorCode, Request, RequestBody, Response, ResponseBody};
use crate::{ScoreRequest, ServingEngine};

// ---------------------------------------------------------------------------
// poll(2) FFI — the one syscall the readiness loop needs. std links libc,
// so a plain extern declaration suffices; no crate dependency.

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[cfg(target_os = "linux")]
type NFds = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NFds = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// `poll` with EINTR retry. `timeout_ms < 0` blocks indefinitely.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // repr(C) pollfd structs for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration and metrics.

/// Wire-server configuration (plain fields; `Default` then override).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port (see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: SocketAddr,
    /// Worker readiness-loop threads (min 1).
    pub workers: usize,
    /// Admission-queue depth: maximum decoded-but-unanswered requests
    /// across all workers before `Overloaded` shedding kicks in.
    pub queue_depth: usize,
    /// Maximum accepted frame payload length in bytes.
    pub max_frame_len: u32,
    /// Per-request deadline measured from frame decode: a request still
    /// waiting to enter a scoring batch past this bound is answered with
    /// a typed `DeadlineExceeded` error instead of a late ranking.
    /// `None` (the default) never expires requests.
    pub request_deadline: Option<Duration>,
    /// Idle-connection reaper bound: a connection with no bytes read or
    /// written for this long is closed by its worker (slow or abandoned
    /// peers — including one stalled mid-frame — cannot pin fds
    /// forever). `None` (the default) never reaps.
    pub idle_timeout: Option<Duration>,
    /// Periodic maintenance tick: every interval, a dedicated thread runs
    /// [`ServingEngine::purge_stale`] so cache entries orphaned by model
    /// swaps are reclaimed without waiting for an operator call (counts
    /// surface as [`crate::ServingMetrics::reaped_stale`]). `None`
    /// disables the tick; the default is 30 seconds.
    pub maintenance_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 2,
            queue_depth: 1024,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            request_deadline: None,
            idle_timeout: None,
            maintenance_interval: Some(Duration::from_secs(30)),
        }
    }
}

/// Default bound for the implicit drain performed by `Drop` and
/// [`ServerHandle::shutdown`].
pub const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

#[derive(Debug, Default)]
struct NetMetricsInner {
    accepted: AtomicU64,
    closed: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    protocol_errors: AtomicU64,
    pings: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    worker_restarts: AtomicU64,
    reaped_idle: AtomicU64,
    request_ns: LatencyHistogram,
    queue_wait_ns: LatencyHistogram,
}

impl NetMetricsInner {
    #[inline]
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Point-in-time view of the wire server's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetMetrics {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed (either side).
    pub closed: u64,
    /// `Recommend` requests decoded off the wire.
    pub requests: u64,
    /// Requests answered with a `Ranking`.
    pub ok: u64,
    /// Requests shed with `Overloaded` (admission queue full).
    pub overloaded: u64,
    /// Requests answered with a typed `Error` response.
    pub errors: u64,
    /// Framing/decoding failures observed (each also sends an `Error`).
    pub protocol_errors: u64,
    /// Ping requests answered.
    pub pings: u64,
    /// Payload bytes read off sockets.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Requests answered `DeadlineExceeded` (queue wait past the
    /// configured per-request deadline; the request was never scored).
    pub deadline_exceeded: u64,
    /// Scoring batches that panicked; each panicked batch answered all
    /// its requests with a typed `Internal` error and the worker
    /// survived.
    pub panics: u64,
    /// Worker readiness loops respawned by the in-thread supervisor
    /// after a panic escaped the loop itself (batch panics are caught
    /// closer in and do **not** restart the worker).
    pub worker_restarts: u64,
    /// Connections closed by the idle reaper.
    pub reaped_idle: u64,
    /// Server-side request latency (decode → response enqueued),
    /// log-bucketed; see [`HistogramSnapshot::p99`] and friends.
    pub request_ns: HistogramSnapshot,
    /// Per-request queue wait (frame decode → scoring-batch entry),
    /// log-bucketed. Deadline misses are judged against this wait.
    pub queue_wait_ns: HistogramSnapshot,
}

struct Shared {
    engine: Arc<ServingEngine>,
    gate: Arc<AdmissionGate>,
    metrics: NetMetricsInner,
    shutdown: AtomicBool,
    draining: AtomicBool,
    max_frame_len: u32,
    request_deadline: Option<Duration>,
    idle_timeout: Option<Duration>,
}

// ---------------------------------------------------------------------------
// Per-connection state.

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Pending output bytes (`out[out_pos..]` not yet written).
    out: Vec<u8>,
    out_pos: usize,
    /// Close once `out` is fully flushed (set after protocol errors/EOF).
    closing: bool,
    /// Last moment bytes moved on this connection (either direction);
    /// the idle reaper closes connections whose activity is older than
    /// the configured idle timeout.
    last_activity: Instant,
    /// Drain mode: output fully flushed and the write side half-closed
    /// (FIN sent); the connection now only waits for the peer's EOF.
    fin_sent: bool,
}

impl Conn {
    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// One admitted request waiting for the scoring batch of this readiness
/// pass. Holding the [`Permit`] keeps its admission slot occupied until
/// the response is built.
struct PendingReq {
    conn: usize,
    id: u64,
    req: ScoreRequest,
    n: u32,
    _permit: Permit,
    t0: Instant,
}

fn push_response(shared: &Shared, conn: &mut Conn, resp: &Response) {
    let payload = proto::encode_response(resp);
    frame::write_frame(&mut conn.out, &payload);
    if matches!(resp.body, ResponseBody::Error { .. }) {
        NetMetricsInner::add(&shared.metrics.errors, 1);
    }
}

// ---------------------------------------------------------------------------
// Worker readiness loop.

fn register_conn(conns: &mut Vec<Option<Conn>>, shared: &Shared, stream: TcpStream) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    NetMetricsInner::add(&shared.metrics.accepted, 1);
    let conn = Conn {
        stream,
        decoder: FrameDecoder::new(shared.max_frame_len),
        out: Vec::new(),
        out_pos: 0,
        closing: false,
        last_activity: Instant::now(),
        fin_sent: false,
    };
    match conns.iter_mut().find(|slot| slot.is_none()) {
        Some(slot) => *slot = Some(conn),
        None => conns.push(Some(conn)),
    }
}

fn close_conn(conns: &mut [Option<Conn>], shared: &Shared, slot: usize) {
    if conns[slot].take().is_some() {
        NetMetricsInner::add(&shared.metrics.closed, 1);
    }
}

fn frame_error_response(fe: FrameError) -> Response {
    let code = match fe {
        FrameError::Oversized { .. } => ErrorCode::FrameTooLarge,
        FrameError::TruncatedEof { .. } => ErrorCode::Truncated,
    };
    Response {
        id: 0,
        body: ResponseBody::Error {
            code,
            message: fe.to_string(),
        },
    }
}

fn handle_payload(
    shared: &Shared,
    conn: &mut Conn,
    slot: usize,
    payload: &[u8],
    pending: &mut Vec<PendingReq>,
) {
    match proto::decode_request(payload) {
        Ok(Request {
            id,
            body: RequestBody::Ping,
        }) => {
            NetMetricsInner::add(&shared.metrics.pings, 1);
            push_response(
                shared,
                conn,
                &Response {
                    id,
                    body: ResponseBody::Pong,
                },
            );
        }
        Ok(Request {
            id,
            body: RequestBody::Recommend { user, time, n },
        }) => {
            NetMetricsInner::add(&shared.metrics.requests, 1);
            match shared.gate.try_acquire() {
                Some(permit) => pending.push(PendingReq {
                    conn: slot,
                    id,
                    req: ScoreRequest {
                        user: usize::try_from(user).unwrap_or(usize::MAX),
                        time: usize::try_from(time).unwrap_or(usize::MAX),
                    },
                    n,
                    _permit: permit,
                    t0: Instant::now(),
                }),
                None => {
                    NetMetricsInner::add(&shared.metrics.overloaded, 1);
                    push_response(
                        shared,
                        conn,
                        &Response {
                            id,
                            body: ResponseBody::Overloaded {
                                queue_depth: shared.gate.capacity() as u32,
                            },
                        },
                    );
                }
            }
        }
        Err(we) => {
            NetMetricsInner::add(&shared.metrics.protocol_errors, 1);
            push_response(
                shared,
                conn,
                &Response {
                    id: proto::salvage_id(payload),
                    body: ResponseBody::Error {
                        code: ErrorCode::Malformed,
                        message: we.to_string(),
                    },
                },
            );
        }
    }
}

fn read_conn(
    conns: &mut [Option<Conn>],
    shared: &Shared,
    slot: usize,
    rbuf: &mut [u8],
    pending: &mut Vec<PendingReq>,
) {
    let Some(conn) = conns[slot].as_mut() else {
        return;
    };
    let mut eof = false;
    loop {
        match conn.stream.read(rbuf) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                NetMetricsInner::add(&shared.metrics.bytes_in, n as u64);
                conn.last_activity = Instant::now();
                conn.decoder.push(&rbuf[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(conns, shared, slot);
                return;
            }
        }
    }
    loop {
        match conn.decoder.next_frame() {
            Ok(Some(payload)) => handle_payload(shared, conn, slot, &payload, pending),
            Ok(None) => break,
            Err(fe) => {
                NetMetricsInner::add(&shared.metrics.protocol_errors, 1);
                push_response(shared, conn, &frame_error_response(fe));
                conn.closing = true;
                break;
            }
        }
    }
    if eof {
        if !conn.closing {
            if let Err(fe) = conn.decoder.finish() {
                // Peer half-closed mid-frame: answer with the typed
                // truncation error before closing our side.
                NetMetricsInner::add(&shared.metrics.protocol_errors, 1);
                push_response(shared, conn, &frame_error_response(fe));
            }
        }
        conn.closing = true;
        if !conn.has_output() {
            close_conn(conns, shared, slot);
        }
    }
}

/// Score every admitted request of this readiness pass: deadline triage
/// first (expired requests answer `DeadlineExceeded` without scoring),
/// then grouped by `n` (a packed batch shares one top-`n` width), one
/// `recommend_batch_pinned` per group under `catch_unwind` (a panicking
/// batch answers typed `Internal` errors and the worker survives),
/// responses written back in decode order per connection.
fn process_pending(shared: &Shared, conns: &mut [Option<Conn>], pending: Vec<PendingReq>) {
    if pending.is_empty() {
        return;
    }
    // Deadline triage at batch entry: queue wait is decode → here. A
    // request past its deadline is answered typed, never scored — the
    // client can safely retry (no side effects were taken).
    let mut live: Vec<PendingReq> = Vec::with_capacity(pending.len());
    for p in pending {
        let waited = p.t0.elapsed();
        shared
            .metrics
            .queue_wait_ns
            .record(waited.as_nanos().min(u128::from(u64::MAX)) as u64);
        match shared.request_deadline {
            Some(deadline) if waited >= deadline => {
                NetMetricsInner::add(&shared.metrics.deadline_exceeded, 1);
                if let Some(conn) = conns[p.conn].as_mut() {
                    push_response(
                        shared,
                        conn,
                        &Response {
                            id: p.id,
                            body: ResponseBody::Error {
                                code: ErrorCode::DeadlineExceeded,
                                message: format!(
                                    "request waited {} µs, past the {} µs deadline; not scored",
                                    waited.as_micros(),
                                    deadline.as_micros()
                                ),
                            },
                        },
                    );
                }
                // `p` (and its permit) drops here without scoring.
            }
            _ => live.push(p),
        }
    }
    if live.is_empty() {
        return;
    }
    let pending = live;
    let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
    for (i, p) in pending.iter().enumerate() {
        match groups.iter_mut().find(|(n, _)| *n == p.n) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((p.n, vec![i])),
        }
    }
    let mut results: Vec<Option<Response>> = (0..pending.len()).map(|_| None).collect();
    for (n, idxs) in groups {
        let requests: Vec<ScoreRequest> = idxs.iter().map(|&i| pending[i].req).collect();
        // Panic isolation: a panic inside the engine answers this batch
        // with typed `Internal` errors instead of unwinding the worker.
        // Every engine-side lock recovers from poisoning (into_inner),
        // so later batches are unaffected.
        let scored = std::panic::catch_unwind(AssertUnwindSafe(|| {
            shared.engine.recommend_batch_pinned(&requests, n as usize)
        }));
        match scored {
            Ok((version, answers)) => {
                for (&i, answer) in idxs.iter().zip(answers) {
                    let body = match answer {
                        Ok(ranking) => {
                            NetMetricsInner::add(&shared.metrics.ok, 1);
                            ResponseBody::Ranking {
                                version,
                                items: ranking
                                    .iter()
                                    .map(|&(poi, score)| (poi as u64, score))
                                    .collect(),
                            }
                        }
                        Err(e) => {
                            let (code, message) = proto::serve_error_to_wire(&e);
                            ResponseBody::Error { code, message }
                        }
                    };
                    results[i] = Some(Response {
                        id: pending[i].id,
                        body,
                    });
                }
            }
            Err(_) => {
                NetMetricsInner::add(&shared.metrics.panics, 1);
                for &i in &idxs {
                    results[i] = Some(Response {
                        id: pending[i].id,
                        body: ResponseBody::Error {
                            code: ErrorCode::Internal,
                            message: "internal error: scoring batch panicked; \
                                      request not answered with data"
                                .to_string(),
                        },
                    });
                }
            }
        }
    }
    for (p, resp) in pending.into_iter().zip(results) {
        let resp = resp.expect("every admitted request answered");
        shared
            .metrics
            .request_ns
            .record(p.t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        if let Some(conn) = conns[p.conn].as_mut() {
            push_response(shared, conn, &resp);
        }
        // `p` (and its permit) drops here: the admission slot frees only
        // once the response is built and queued.
    }
}

fn flush_conn(conns: &mut [Option<Conn>], shared: &Shared, slot: usize) {
    let Some(conn) = conns[slot].as_mut() else {
        return;
    };
    while conn.has_output() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                close_conn(conns, shared, slot);
                return;
            }
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
                NetMetricsInner::add(&shared.metrics.bytes_out, n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(conns, shared, slot);
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    if conn.closing {
        close_conn(conns, shared, slot);
    }
}

/// Close every connection whose last activity is older than the idle
/// timeout. Covers abandoned sockets, peers stalled mid-frame, and
/// peers that stopped reading their responses.
fn reap_idle(conns: &mut [Option<Conn>], shared: &Shared, idle: Duration) {
    for slot in 0..conns.len() {
        let expired = conns[slot]
            .as_ref()
            .is_some_and(|c| c.last_activity.elapsed() >= idle);
        if expired {
            NetMetricsInner::add(&shared.metrics.reaped_idle, 1);
            close_conn(conns, shared, slot);
        }
    }
}

fn drain_wake(wake: &UnixStream) {
    let mut buf = [0u8; 64];
    loop {
        match (&*wake).read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Drain state machine, per worker: flush every queued response, then
/// half-close the write side (FIN lands *after* the last response byte)
/// and wait for the peer's EOF before closing. No new bytes are read
/// into the decoder, so a request that never entered a batch is simply
/// never answered — its connection still closes at a clean frame
/// boundary. Exits when all connections are closed or `shutdown` forces
/// the remainder.
fn drain_conns(shared: &Shared, conns: &mut [Option<Conn>], wake: &UnixStream) {
    let mut pfds: Vec<PollFd> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();
    let mut rbuf = [0u8; 4096];
    loop {
        // Half-close flushed connections; close the ones already done.
        for slot in 0..conns.len() {
            let Some(c) = conns[slot].as_mut() else {
                continue;
            };
            if !c.has_output() && !c.fin_sent {
                if c.closing || c.stream.shutdown(Shutdown::Write).is_err() {
                    close_conn(conns, shared, slot);
                } else {
                    c.fin_sent = true;
                }
            }
        }
        if conns.iter().all(Option::is_none) {
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            for slot in 0..conns.len() {
                close_conn(conns, shared, slot);
            }
            return;
        }
        pfds.clear();
        slots.clear();
        pfds.push(PollFd {
            fd: wake.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (slot, conn) in conns.iter().enumerate() {
            if let Some(c) = conn {
                let events = if c.fin_sent { POLLIN } else { POLLOUT };
                pfds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                slots.push(slot);
            }
        }
        if poll_fds(&mut pfds, 50).is_err() {
            continue;
        }
        if pfds[0].revents != 0 {
            drain_wake(wake);
        }
        for (i, &slot) in slots.iter().enumerate() {
            let revents = pfds[i + 1].revents;
            if revents == 0 {
                continue;
            }
            if revents & POLLNVAL != 0 {
                close_conn(conns, shared, slot);
                continue;
            }
            let fin_sent = conns[slot].as_ref().is_some_and(|c| c.fin_sent);
            if fin_sent {
                // Discard post-FIN bytes from the peer; close on its EOF
                // (or any error — the flush already completed).
                while let Some(c) = conns[slot].as_mut() {
                    match c.stream.read(&mut rbuf) {
                        Ok(0) => {
                            close_conn(conns, shared, slot);
                            break;
                        }
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            close_conn(conns, shared, slot);
                            break;
                        }
                    }
                }
            } else if revents & (POLLOUT | POLLHUP | POLLERR) != 0 {
                flush_conn(conns, shared, slot);
            }
        }
    }
}

/// One readiness-loop pass cycle until shutdown or drain. Separated from
/// [`worker_thread`] so the supervisor can respawn it with fresh state
/// after an escaped panic; `conns` lives in the supervisor's frame so
/// orphaned connections can be counted (and closed) on unwind.
fn worker_loop(
    shared: &Shared,
    inbox: &Mutex<Vec<TcpStream>>,
    wake: &UnixStream,
    conns: &mut Vec<Option<Conn>>,
) {
    let mut pfds: Vec<PollFd> = Vec::new();
    let mut slots: Vec<usize> = Vec::new();
    let mut rbuf = vec![0u8; 16 * 1024];
    // Bounded poll timeout so shutdown is honoured even with no traffic
    // and no wake byte, and so the idle reaper runs on schedule.
    let poll_ms = match shared.idle_timeout {
        Some(idle) => (idle.as_millis() as i64 / 2).clamp(10, 250) as i32,
        None => 250,
    };
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.draining.load(Ordering::Acquire) {
            drain_conns(shared, conns, wake);
            return;
        }
        pfds.clear();
        slots.clear();
        pfds.push(PollFd {
            fd: wake.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (slot, conn) in conns.iter().enumerate() {
            if let Some(c) = conn {
                let mut events = POLLIN;
                if c.has_output() {
                    events |= POLLOUT;
                }
                pfds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                slots.push(slot);
            }
        }
        if poll_fds(&mut pfds, poll_ms).is_err() {
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if pfds[0].revents != 0 {
            drain_wake(wake);
            let fresh = {
                let mut inbox = inbox.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *inbox)
            };
            for stream in fresh {
                register_conn(conns, shared, stream);
            }
        }
        let mut pending: Vec<PendingReq> = Vec::new();
        for (i, &slot) in slots.iter().enumerate() {
            let revents = pfds[i + 1].revents;
            if revents == 0 {
                continue;
            }
            if revents & POLLNVAL != 0 {
                close_conn(conns, shared, slot);
                continue;
            }
            if revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                read_conn(conns, shared, slot, &mut rbuf, &mut pending);
            }
        }
        process_pending(shared, conns, pending);
        for slot in 0..conns.len() {
            if conns[slot].as_ref().is_some_and(Conn::has_output) {
                flush_conn(conns, shared, slot);
            } else if conns[slot].as_ref().is_some_and(|c| c.closing) {
                close_conn(conns, shared, slot);
            }
        }
        if let Some(idle) = shared.idle_timeout {
            reap_idle(conns, shared, idle);
        }
    }
}

/// Worker thread body: an in-thread supervisor around [`worker_loop`].
/// Batch panics never reach here (they are caught in `process_pending`);
/// if a panic escapes the readiness loop anyway, its connections are
/// closed and counted and the loop respawns with fresh state — the
/// worker keeps serving instead of silently dying.
fn worker_thread(shared: Arc<Shared>, inbox: Arc<Mutex<Vec<TcpStream>>>, wake: UnixStream) {
    let _ = wake.set_nonblocking(true);
    loop {
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            worker_loop(&shared, &inbox, &wake, &mut conns)
        }));
        match result {
            Ok(()) => return,
            Err(_) => {
                let orphaned = conns.iter().flatten().count() as u64;
                NetMetricsInner::add(&shared.metrics.closed, orphaned);
                drop(conns);
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                NetMetricsInner::add(&shared.metrics.worker_restarts, 1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptor and public handle.

fn acceptor_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>>,
    wakes: Vec<UnixStream>,
) {
    let mut next = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire)
                    || shared.draining.load(Ordering::Acquire)
                {
                    // Draining/shutting down: stop accepting. The freshly
                    // accepted stream (possibly the drain's own kick
                    // connection) drops here — it was never served.
                    return;
                }
                let w = next % inboxes.len();
                next = next.wrapping_add(1);
                inboxes[w]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(stream);
                let _ = (&wakes[w]).write(&[1]);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire)
                    || shared.draining.load(Ordering::Acquire)
                {
                    return;
                }
            }
        }
    }
}

/// Periodic cache maintenance: runs [`ServingEngine::purge_stale`] every
/// `interval`, sleeping in short slices so drain/shutdown is observed
/// within ~10 ms rather than a full interval. Purging is cheap (shard
/// scans dropping version-mismatched entries) and touches no request
/// state, so it runs concurrently with full traffic.
fn maintenance_loop(shared: Arc<Shared>, interval: Duration) {
    const SLICE: Duration = Duration::from_millis(10);
    let mut last = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::Acquire) || shared.draining.load(Ordering::Acquire) {
            return;
        }
        if last.elapsed() >= interval {
            shared.engine.purge_stale();
            last = Instant::now();
        }
        std::thread::sleep(SLICE.min(interval));
    }
}

/// The wire-protocol server. [`NetServer::start`] spawns the acceptor and
/// worker threads and returns a [`ServerHandle`].
pub struct NetServer;

impl NetServer {
    /// Bind `cfg.addr` and start serving `engine` over the wire.
    pub fn start(engine: Arc<ServingEngine>, cfg: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            gate: Arc::new(AdmissionGate::new(cfg.queue_depth)),
            metrics: NetMetricsInner::default(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            max_frame_len: cfg.max_frame_len,
            request_deadline: cfg.request_deadline,
            idle_timeout: cfg.idle_timeout,
        });

        let mut inboxes = Vec::with_capacity(workers);
        let mut wake_txs = Vec::with_capacity(workers);
        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = UnixStream::pair()?;
            let inbox: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
            let shared_w = Arc::clone(&shared);
            let inbox_w = Arc::clone(&inbox);
            let handle = std::thread::Builder::new()
                .name(format!("tcss-serve-worker-{w}"))
                .spawn(move || worker_thread(shared_w, inbox_w, rx))?;
            inboxes.push(inbox);
            wake_txs.push(tx);
            worker_handles.push(handle);
        }

        let acceptor_wakes: Vec<UnixStream> = wake_txs
            .iter()
            .map(UnixStream::try_clone)
            .collect::<io::Result<_>>()?;
        let shared_a = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("tcss-serve-acceptor".to_string())
            .spawn(move || acceptor_loop(shared_a, listener, inboxes, acceptor_wakes))?;

        let maint = match cfg.maintenance_interval {
            Some(interval) => {
                let shared_m = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("tcss-serve-maint".to_string())
                        .spawn(move || maintenance_loop(shared_m, interval))?,
                )
            }
            None => None,
        };

        Ok(ServerHandle {
            addr,
            shared,
            wake_txs,
            acceptor: Some(acceptor),
            workers: worker_handles,
            maint,
        })
    }
}

/// Running server handle: address, metrics, admission gate, drain and
/// shutdown. Dropping the handle performs a **bounded drain**
/// ([`DEFAULT_DRAIN_TIMEOUT`]) — queued responses are flushed, never
/// abandoned, before the threads are joined.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    wake_txs: Vec<UnixStream>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    maint: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the kernel-assigned port when the config
    /// asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving engine behind the wire — swaps through it are live
    /// immediately ([`ServingEngine::swap_model`]).
    pub fn engine(&self) -> Arc<ServingEngine> {
        Arc::clone(&self.shared.engine)
    }

    /// The shared admission gate (tests occupy it to force shedding).
    pub fn admission(&self) -> Arc<AdmissionGate> {
        Arc::clone(&self.shared.gate)
    }

    /// Wire-server counter snapshot.
    pub fn metrics(&self) -> NetMetrics {
        let m = &self.shared.metrics;
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetMetrics {
            accepted: get(&m.accepted),
            closed: get(&m.closed),
            requests: get(&m.requests),
            ok: get(&m.ok),
            overloaded: get(&m.overloaded),
            errors: get(&m.errors),
            protocol_errors: get(&m.protocol_errors),
            pings: get(&m.pings),
            bytes_in: get(&m.bytes_in),
            bytes_out: get(&m.bytes_out),
            deadline_exceeded: get(&m.deadline_exceeded),
            panics: get(&m.panics),
            worker_restarts: get(&m.worker_restarts),
            reaped_idle: get(&m.reaped_idle),
            request_ns: m.request_ns.snapshot(),
            queue_wait_ns: m.queue_wait_ns.snapshot(),
        }
    }

    /// Graceful shutdown: stop accepting, finish in-flight batches,
    /// flush every queued response, half-close each connection and wait
    /// for the peer's EOF — then join all threads. Connections still
    /// open at `timeout` are force-closed (the flush itself completed
    /// for any connection whose peer kept reading). Returns `true` when
    /// every connection drained within the timeout, `false` when the
    /// force path had to fire. Idempotent.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        self.shared.draining.store(true, Ordering::Release);
        // Kick the acceptor out of its blocking accept; wake every
        // worker parked in poll so the drain flag is seen immediately.
        let _ = TcpStream::connect(self.addr);
        for wake in &self.wake_txs {
            let _ = (&*wake).write(&[1]);
        }
        let deadline = Instant::now() + timeout;
        let mut clean = true;
        loop {
            let all_done = self.workers.iter().all(JoinHandle::is_finished)
                && self.acceptor.as_ref().is_none_or(JoinHandle::is_finished);
            if all_done {
                break;
            }
            if Instant::now() >= deadline {
                clean = false;
                // Timeout: force the remaining connections closed.
                self.shared.shutdown.store(true, Ordering::Release);
                let _ = TcpStream::connect(self.addr);
                for wake in &self.wake_txs {
                    let _ = (&*wake).write(&[1]);
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(maint) = self.maint.take() {
            let _ = maint.join();
        }
        clean
    }

    /// Stop the server and join all threads. Delegates to a bounded
    /// [`ServerHandle::drain`] ([`DEFAULT_DRAIN_TIMEOUT`]), so queued
    /// responses are flushed before sockets close — a `shutdown` (or an
    /// implicit drop) never abandons a response that was already built.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.drain(DEFAULT_DRAIN_TIMEOUT);
    }

    /// Block until the server is shut down from elsewhere (the CLI's
    /// run-forever mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(maint) = self.maint.take() {
            let _ = maint.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}
