//! Wire-protocol serving: framing, message codec, admission control,
//! readiness-loop server and blocking client.
//!
//! Layering, bottom up:
//!
//! 1. [`frame`] — length-prefixed binary frames, incremental decoding
//!    under arbitrary byte-boundary splits, typed oversize/truncation
//!    errors.
//! 2. [`proto`] — request/response messages inside frames; scores travel
//!    as `f64::to_bits`, so wire answers are bitwise-identical to
//!    in-process `recommend` calls on the same model snapshot.
//! 3. [`admission`] — the bounded in-flight gate behind deterministic
//!    `Overloaded` load shedding.
//! 4. [`server`] — the `poll(2)` readiness loop (acceptor + worker
//!    threads) over [`crate::ServingEngine`], batching decoded requests
//!    across connections and surviving model swaps mid-load.
//! 5. [`client`] — a small blocking client with pipelining, read
//!    timeouts, per-call deadlines and deterministic capped-backoff
//!    retry, shared by the CLI, tests and the load generator.
//! 6. [`faulty`] — deterministic transport fault injection (stalls,
//!    partial writes, resets, byte corruption keyed by request index),
//!    the test-only shim behind the serve-chaos suite.
//!
//! The server side layers a typed failure model on top: per-request
//! deadlines, an idle-connection reaper, `catch_unwind` panic isolation
//! with worker respawn, and graceful drain ([`ServerHandle::drain`]).
//! See `DESIGN.md` §5f for the wire-serving design notes, §5g for the
//! failure model, and `crates/bench/src/bin/bench_serve_net.rs` for the
//! tail-latency harness that produces `BENCH_serve_net.json`.

pub mod admission;
pub mod client;
pub mod faulty;
pub mod frame;
pub mod proto;
pub mod server;

pub use admission::{AdmissionGate, Permit};
pub use client::{ClientConfig, ClientError, ClientStats, NetClient};
pub use faulty::{FaultyTransport, TransportFault, TransportFaultPlan};
pub use frame::{FrameDecoder, FrameError, DEFAULT_MAX_FRAME_LEN};
pub use proto::{ErrorCode, Request, RequestBody, Response, ResponseBody, WireError};
pub use server::{NetMetrics, NetServer, ServerConfig, ServerHandle, DEFAULT_DRAIN_TIMEOUT};
