//! Admission control: a bounded in-flight permit gate.
//!
//! The server decodes requests off the wire faster than the engine can
//! score them when offered load exceeds capacity. Rather than queueing
//! without bound (latency death spiral) or blocking the readiness loop
//! (head-of-line stall for every connection on the worker), each decoded
//! request must win a permit before it may enter the scoring batch. When
//! the gate is full the request is answered immediately with a typed
//! `Overloaded` response — deterministic shed, never a timeout.
//!
//! Permits are RAII ([`Permit`]): released when the response has been
//! built, so the gate's occupancy is exactly the number of
//! decoded-but-unanswered requests across all workers. Tests grab the
//! whole gate up front to force the full-queue path deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bounded permit counter shared by all workers of one server.
#[derive(Debug)]
pub struct AdmissionGate {
    capacity: usize,
    in_flight: AtomicUsize,
}

impl AdmissionGate {
    /// Gate admitting at most `capacity` in-flight requests (min 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionGate {
            capacity: capacity.max(1),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Configured queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently holding permits.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Try to admit one request; `None` means the queue is at capacity
    /// and the caller must shed.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Permit {
                        gate: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// RAII admission permit; dropping it frees one queue slot.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_capacity_and_recovers() {
        let gate = Arc::new(AdmissionGate::new(2));
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "full gate sheds");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        assert!(gate.try_acquire().is_some(), "freed slot readmits");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let gate = Arc::new(AdmissionGate::new(0));
        assert_eq!(gate.capacity(), 1);
        let _p = gate.try_acquire().expect("one slot");
        assert!(gate.try_acquire().is_none());
    }
}
