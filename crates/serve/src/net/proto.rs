//! The TCSS serving wire protocol: message encoding inside frames.
//!
//! One frame payload ([`crate::net::frame`]) carries one message. All
//! integers are little-endian; scores travel as raw `f64::to_bits` so a
//! wire response is **bitwise** identical to the in-process ranking that
//! produced it — the repo's determinism contract extends across the
//! socket unchanged.
//!
//! ```text
//! request payload  := kind:u8  id:u64  body
//!   kind 1 Recommend  body := user:u64 time:u64 n:u32
//!   kind 2 Ping       body := (empty)
//! response payload := kind:u8  id:u64  body
//!   kind 1 Ranking    body := version:u64 count:u32 (poi:u64 score:u64-bits)*count
//!   kind 2 Pong       body := (empty)
//!   kind 3 Overloaded body := queue_depth:u32
//!   kind 4 Error      body := code:u8 msg_len:u32 msg:utf8
//! ```
//!
//! `id` is a caller-chosen correlation id echoed verbatim in the
//! response, so clients may pipeline. Decoding is exact: short bodies,
//! unknown kinds, bad UTF-8 and trailing garbage are typed
//! [`WireError`]s — never a panic, and (server-side) never a dropped
//! connection without a typed `Error` response first.

use crate::ServeError;

/// Recommendation request body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestBody {
    /// Top-`n` POIs for `(user, time)`.
    Recommend {
        /// User index.
        user: u64,
        /// Time-unit index.
        time: u64,
        /// Result-list length.
        n: u32,
    },
    /// Liveness probe; answered out-of-band with `Pong` (no admission).
    Ping,
}

/// One request message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Correlation id echoed in the response.
    pub id: u64,
    /// The request body.
    pub body: RequestBody,
}

/// Typed error codes carried by `Response::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Request payload failed to decode (see message for detail).
    Malformed = 1,
    /// User index outside the serving model.
    UserOutOfRange = 2,
    /// Time-unit index outside the serving model.
    TimeOutOfRange = 3,
    /// Frame length prefix exceeded the server's cap.
    FrameTooLarge = 4,
    /// Connection ended mid-frame.
    Truncated = 5,
    /// The request sat past the server's per-request deadline before it
    /// could enter a scoring batch; it was **not** scored. Retry is safe.
    DeadlineExceeded = 6,
    /// The server hit an internal failure (a panic during batch
    /// execution) scoring this request. The connection survives; the
    /// request was not answered with data and may be retried.
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UserOutOfRange),
            3 => Some(ErrorCode::TimeOutOfRange),
            4 => Some(ErrorCode::FrameTooLarge),
            5 => Some(ErrorCode::Truncated),
            6 => Some(ErrorCode::DeadlineExceeded),
            7 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// Response message body.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Top-`n` answer under `version` of the serving model.
    Ranking {
        /// Model version that produced the ranking.
        version: u64,
        /// `(poi, score)` in ranking order; scores bitwise-exact.
        items: Vec<(u64, f64)>,
    },
    /// Liveness answer.
    Pong,
    /// Load shed: the admission queue was at capacity. The request was
    /// **not** scored; retry later.
    Overloaded {
        /// The configured admission-queue depth that was exceeded.
        queue_depth: u32,
    },
    /// Typed failure for this request (or, for protocol-level errors,
    /// for the connection — the server closes after sending it).
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One response message.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Correlation id of the request this answers (0 when the request
    /// was too mangled to recover one).
    pub id: u64,
    /// The response body.
    pub body: ResponseBody,
}

/// Typed wire-decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Zero-length payload (no kind byte).
    Empty,
    /// Unknown message kind byte.
    UnknownKind(u8),
    /// Payload shorter than its kind requires.
    Short {
        /// Message kind being decoded.
        kind: u8,
        /// Bytes the body needed.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Payload longer than its kind consumes (trailing garbage).
    Trailing {
        /// Message kind being decoded.
        kind: u8,
        /// Unconsumed byte count.
        extra: usize,
    },
    /// Error message bytes were not UTF-8.
    BadUtf8,
    /// Error response carried an unknown code byte.
    BadErrorCode(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty message payload"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::Short { kind, need, have } => {
                write!(f, "kind-{kind} message needs {need} body bytes, got {have}")
            }
            WireError::Trailing { kind, extra } => {
                write!(f, "kind-{kind} message has {extra} trailing byte(s)")
            }
            WireError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Map an engine-level serving error to its wire error code + message.
pub fn serve_error_to_wire(e: &ServeError) -> (ErrorCode, String) {
    let code = match e {
        ServeError::UserOutOfRange { .. } => ErrorCode::UserOutOfRange,
        ServeError::TimeOutOfRange { .. } => ErrorCode::TimeOutOfRange,
    };
    (code, e.to_string())
}

const REQ_RECOMMEND: u8 = 1;
const REQ_PING: u8 = 2;
const RESP_RANKING: u8 = 1;
const RESP_PONG: u8 = 2;
const RESP_OVERLOADED: u8 = 3;
const RESP_ERROR: u8 = 4;

/// Exact-consumption little-endian reader over a message payload.
struct Reader<'a> {
    kind: u8,
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.body.len() - self.pos;
        if have < n {
            return Err(WireError::Short {
                kind: self.kind,
                need: self.pos + n,
                have: self.body.len(),
            });
        }
        let s = &self.body[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn done(&self) -> Result<(), WireError> {
        let extra = self.body.len() - self.pos;
        if extra != 0 {
            return Err(WireError::Trailing {
                kind: self.kind,
                extra,
            });
        }
        Ok(())
    }
}

fn reader(payload: &[u8]) -> Result<Reader<'_>, WireError> {
    let (&kind, body) = payload.split_first().ok_or(WireError::Empty)?;
    Ok(Reader { kind, body, pos: 0 })
}

/// Encode a request message payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match req.body {
        RequestBody::Recommend { user, time, n } => {
            out.push(REQ_RECOMMEND);
            out.extend_from_slice(&req.id.to_le_bytes());
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&time.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        RequestBody::Ping => {
            out.push(REQ_PING);
            out.extend_from_slice(&req.id.to_le_bytes());
        }
    }
    out
}

/// Decode a request message payload (exact length).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = reader(payload)?;
    let id = r.u64()?;
    let req = match r.kind {
        REQ_RECOMMEND => Request {
            id,
            body: RequestBody::Recommend {
                user: r.u64()?,
                time: r.u64()?,
                n: r.u32()?,
            },
        },
        REQ_PING => Request {
            id,
            body: RequestBody::Ping,
        },
        k => return Err(WireError::UnknownKind(k)),
    };
    r.done()?;
    Ok(req)
}

/// Best-effort correlation id of a payload that may fail full decoding
/// (any kind byte + at least 8 body bytes); 0 otherwise. Lets the server
/// address a typed `Error` response to the request that caused it.
pub fn salvage_id(payload: &[u8]) -> u64 {
    if payload.len() >= 9 {
        u64::from_le_bytes(payload[1..9].try_into().expect("8"))
    } else {
        0
    }
}

/// Encode a response message payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match &resp.body {
        ResponseBody::Ranking { version, items } => {
            out.push(RESP_RANKING);
            out.extend_from_slice(&resp.id.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
            let count = u32::try_from(items.len()).expect("ranking fits u32");
            out.extend_from_slice(&count.to_le_bytes());
            for &(poi, score) in items {
                out.extend_from_slice(&poi.to_le_bytes());
                out.extend_from_slice(&score.to_bits().to_le_bytes());
            }
        }
        ResponseBody::Pong => {
            out.push(RESP_PONG);
            out.extend_from_slice(&resp.id.to_le_bytes());
        }
        ResponseBody::Overloaded { queue_depth } => {
            out.push(RESP_OVERLOADED);
            out.extend_from_slice(&resp.id.to_le_bytes());
            out.extend_from_slice(&queue_depth.to_le_bytes());
        }
        ResponseBody::Error { code, message } => {
            out.push(RESP_ERROR);
            out.extend_from_slice(&resp.id.to_le_bytes());
            out.push(*code as u8);
            let len = u32::try_from(message.len()).expect("message fits u32");
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
    }
    out
}

/// Decode a response message payload (exact length).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = reader(payload)?;
    let id = r.u64()?;
    let body = match r.kind {
        RESP_RANKING => {
            let version = r.u64()?;
            let count = r.u32()? as usize;
            let mut items = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                let poi = r.u64()?;
                let score = f64::from_bits(r.u64()?);
                items.push((poi, score));
            }
            ResponseBody::Ranking { version, items }
        }
        RESP_PONG => ResponseBody::Pong,
        RESP_OVERLOADED => ResponseBody::Overloaded {
            queue_depth: r.u32()?,
        },
        RESP_ERROR => {
            let raw = r.u8()?;
            let code = ErrorCode::from_u8(raw).ok_or(WireError::BadErrorCode(raw))?;
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            ResponseBody::Error { code, message }
        }
        k => return Err(WireError::UnknownKind(k)),
    };
    r.done()?;
    Ok(Response { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        for req in [
            Request {
                id: 42,
                body: RequestBody::Recommend {
                    user: 7,
                    time: 5,
                    n: 10,
                },
            },
            Request {
                id: u64::MAX,
                body: RequestBody::Ping,
            },
        ] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrips_bitwise() {
        let resp = Response {
            id: 9,
            body: ResponseBody::Ranking {
                version: 3,
                items: vec![(5, 1.25), (0, -0.0), (2, f64::MIN_POSITIVE)],
            },
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back.id, 9);
        match (&resp.body, &back.body) {
            (
                ResponseBody::Ranking { items: a, .. },
                ResponseBody::Ranking {
                    version: 3,
                    items: b,
                },
            ) => {
                for ((pa, sa), (pb, sb)) in a.iter().zip(b) {
                    assert_eq!(pa, pb);
                    assert_eq!(sa.to_bits(), sb.to_bits());
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_typed() {
        assert_eq!(decode_request(&[]).unwrap_err(), WireError::Empty);
        assert_eq!(
            decode_request(&[77, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap_err(),
            WireError::UnknownKind(77)
        );
        let mut good = encode_request(&Request {
            id: 1,
            body: RequestBody::Ping,
        });
        good.push(0xAA);
        assert_eq!(
            decode_request(&good).unwrap_err(),
            WireError::Trailing { kind: 2, extra: 1 }
        );
        let short = &encode_request(&Request {
            id: 1,
            body: RequestBody::Recommend {
                user: 1,
                time: 1,
                n: 1,
            },
        })[..12];
        assert!(matches!(
            decode_request(short).unwrap_err(),
            WireError::Short { kind: 1, .. }
        ));
    }

    #[test]
    fn salvage_id_recovers_when_possible() {
        let wire = encode_request(&Request {
            id: 0xDEAD_BEEF,
            body: RequestBody::Ping,
        });
        assert_eq!(salvage_id(&wire), 0xDEAD_BEEF);
        assert_eq!(salvage_id(&wire[..5]), 0);
    }
}
