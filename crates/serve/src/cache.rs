//! Sharded, version-keyed caches.
//!
//! The serving caches (per-`(user, time)` weight vectors, per-request
//! top-`n` results) share one invalidation scheme: every entry is tagged
//! with the model version that produced it, and an entry is served only
//! while its tag equals the *current* version ([`crate::ModelHandle`]).
//! A model swap therefore invalidates every cached value wholesale with a
//! single version bump — no per-entry work, no stop-the-world sweep on the
//! swap path. Stale entries are evicted lazily (overwritten on the next
//! insert under the same key) or in bulk via [`VersionedCache::purge_stale`]
//! for deployments that want the memory back eagerly.
//!
//! Concurrency: the map is split into power-of-two shards, each behind its
//! own `RwLock`. The read path takes one shard *read* lock (shared, so
//! concurrent readers of a hot shard never serialize) and performs zero
//! per-entry locking — values are handed out as `Arc` clones. Writes touch
//! only the owning shard.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

/// Default shard count for the serving caches.
pub const DEFAULT_SHARDS: usize = 16;

/// One shard: a locked map from key to `(version_tag, value)`.
type Shard<K, V> = RwLock<HashMap<K, (u64, Arc<V>)>>;

/// A sharded map from `K` to version-tagged `Arc<V>` values.
#[derive(Debug)]
pub struct VersionedCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    mask: usize,
}

impl<K: Hash + Eq, V> VersionedCache<K, V> {
    /// Cache with `shards` shards (rounded up to a power of two, min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        VersionedCache {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: n - 1,
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Look up `key`, returning the value only if it was stored under
    /// `version` (the caller passes the *current* model version; anything
    /// else is stale and reported as a miss).
    pub fn get(&self, key: &K, version: u64) -> Option<Arc<V>> {
        let shard = self.shard(key).read().unwrap_or_else(|e| e.into_inner());
        shard
            .get(key)
            .filter(|(v, _)| *v == version)
            .map(|(_, value)| value.clone())
    }

    /// Store `value` under `key`, tagged with `version`. Overwrites any
    /// previous entry for the key (in particular, lazily evicting a stale
    /// one). An insert tagged with an already-superseded version is
    /// harmless: [`VersionedCache::get`] can never return it.
    pub fn insert(&self, key: K, version: u64, value: Arc<V>) {
        let mut shard = self.shard(&key).write().unwrap_or_else(|e| e.into_inner());
        shard.insert(key, (version, value));
    }

    /// Drop every entry whose tag differs from `version`, returning how
    /// many were removed. Optional: correctness never requires it (stale
    /// entries are unreachable through [`VersionedCache::get`]); this only
    /// reclaims their memory eagerly after a swap.
    pub fn purge_stale(&self, version: u64) -> usize {
        let mut removed = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
            let before = shard.len();
            shard.retain(|_, (v, _)| *v == version);
            removed += before - shard.len();
        }
        removed
    }

    /// Total entries, live and stale (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when no entries are stored at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries whose tag differs from `version` (diagnostics/tests).
    pub fn stale_len(&self, version: u64) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .filter(|(v, _)| *v != version)
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_a_miss() {
        let c: VersionedCache<(usize, usize), Vec<f64>> = VersionedCache::with_shards(4);
        c.insert((3, 5), 1, Arc::new(vec![1.0]));
        assert!(c.get(&(3, 5), 1).is_some());
        assert!(c.get(&(3, 5), 2).is_none(), "stale entry must not serve");
        assert!(c.get(&(0, 0), 1).is_none(), "absent key");
    }

    #[test]
    fn purge_removes_exactly_the_stale() {
        let c: VersionedCache<usize, f64> = VersionedCache::with_shards(2);
        for k in 0..20 {
            c.insert(k, 1, Arc::new(k as f64));
        }
        c.insert(7, 2, Arc::new(-1.0));
        assert_eq!(c.len(), 20);
        assert_eq!(c.stale_len(2), 19);
        assert_eq!(c.purge_stale(2), 19);
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get(&7, 2).unwrap(), -1.0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: VersionedCache<usize, usize> = VersionedCache::with_shards(0);
        assert_eq!(c.shards.len(), 1);
        let c: VersionedCache<usize, usize> = VersionedCache::with_shards(9);
        assert_eq!(c.shards.len(), 16);
        // Every key routes to a valid shard and round-trips.
        for k in 0..100 {
            c.insert(k, 1, Arc::new(k));
            assert_eq!(*c.get(&k, 1).unwrap(), k);
        }
        assert!(!c.is_empty());
    }
}
