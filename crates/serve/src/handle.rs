//! Swappable model handle with a monotonically increasing version.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tcss_core::TcssModel;

use crate::snapshot::SnapshotModel;

/// The model a snapshot serves from: either the full-precision f64
/// training model, or a compact quantized snapshot scored straight out of
/// its backing `mmap` (see [`crate::snapshot`]).
///
/// Both variants answer the same surface — [`dims`](ServingModel::dims),
/// [`rank`](ServingModel::rank), [`scores_for`](ServingModel::scores_for)
/// — so the engine, the wire server and the parity suites are agnostic to
/// which one is installed. The f64 variant is bitwise-exact against
/// [`TcssModel::scores_for`]; the compact variant carries the documented
/// quantization error budget instead.
#[derive(Debug)]
pub enum ServingModel {
    /// Full-precision f64 factors (the training model, verbatim).
    F64(TcssModel),
    /// Quantized flat snapshot (f32 or per-row-scaled i16 factors).
    Compact(SnapshotModel),
}

impl ServingModel {
    /// `(I, J, K)` dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        match self {
            ServingModel::F64(m) => m.dims(),
            ServingModel::Compact(s) => s.dims(),
        }
    }

    /// Embedding length `r`.
    pub fn rank(&self) -> usize {
        match self {
            ServingModel::F64(m) => m.rank(),
            ServingModel::Compact(s) => s.rank(),
        }
    }

    /// Scores for every POI at `(user, time)` — the per-request reference
    /// path every batched row is pinned against (bitwise for f64, bitwise
    /// against the same lane kernels for compact).
    pub fn scores_for(&self, user: usize, time: usize) -> Vec<f64> {
        match self {
            ServingModel::F64(m) => m.scores_for(user, time),
            ServingModel::Compact(s) => s.scores_for(user, time),
        }
    }

    /// The f64 training model, if that is what is installed.
    pub fn as_f64(&self) -> Option<&TcssModel> {
        match self {
            ServingModel::F64(m) => Some(m),
            ServingModel::Compact(_) => None,
        }
    }

    /// The compact snapshot, if that is what is installed.
    pub fn as_compact(&self) -> Option<&SnapshotModel> {
        match self {
            ServingModel::F64(_) => None,
            ServingModel::Compact(s) => Some(s),
        }
    }
}

impl From<TcssModel> for ServingModel {
    fn from(m: TcssModel) -> Self {
        ServingModel::F64(m)
    }
}

impl From<SnapshotModel> for ServingModel {
    fn from(s: SnapshotModel) -> Self {
        ServingModel::Compact(s)
    }
}

/// An immutable model pinned to the version it was published under.
///
/// Snapshots are what the serving hot path actually scores against: a
/// request batch clones one `Arc<ModelSnapshot>` up front and works on it
/// to completion, so a concurrent [`ModelHandle::swap`] can never tear a
/// batch (half old factors, half new) — the swap publishes a *new* snapshot
/// and in-flight batches keep the old one alive until they drop it.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// The published model (f64 or compact; see [`ServingModel`]).
    pub model: ServingModel,
    /// The version this model was published under (see [`ModelHandle`]).
    pub version: u64,
}

/// Epoch-style swappable handle to the serving model.
///
/// Design: readers never block on scoring-length critical sections and a
/// swap never waits for in-flight work.
///
/// * [`ModelHandle::snapshot`] pins the current epoch by cloning the inner
///   `Arc` — the `RwLock` read guard lives only for the duration of that
///   pointer clone (a few nanoseconds), never across any scoring work.
/// * [`ModelHandle::version`] is one `Relaxed` atomic load, so the cache
///   read path validates entries without touching the lock at all.
/// * [`ModelHandle::swap`] installs a new `Arc` under the write lock and
///   *then* bumps the version counter. Ordering matters: a cache entry is
///   only ever stored under the version of the snapshot that produced it,
///   and entries are valid only while their version equals the current one
///   — bumping after the install means no window exists where the new
///   version could validate an entry computed from the old model.
///
/// Versions start at 1 and increase by 1 per swap, never repeating, so a
/// version-keyed cache entry can never be revived by a later swap. The
/// install-then-bump order and version stamping are identical whether the
/// installed model is f64 or compact — swapping *between* precisions is an
/// ordinary swap.
#[derive(Debug)]
pub struct ModelHandle {
    current: RwLock<Arc<ModelSnapshot>>,
    version: AtomicU64,
}

impl ModelHandle {
    /// Wrap an initial model as version 1.
    pub fn new(model: impl Into<ServingModel>) -> Self {
        ModelHandle {
            current: RwLock::new(Arc::new(ModelSnapshot {
                model: model.into(),
                version: 1,
            })),
            version: AtomicU64::new(1),
        }
    }

    /// Pin the current snapshot (cheap: one `Arc` clone under a
    /// momentary read guard).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The currently published version — one atomic load, no lock.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publish `model` as the new current snapshot, returning its version.
    ///
    /// Every version-keyed cache entry produced from earlier snapshots is
    /// wholesale-invalidated by the version bump; in-flight batches pinned
    /// to an older snapshot run to completion on it.
    pub fn swap(&self, model: impl Into<ServingModel>) -> u64 {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let version = slot.version + 1;
        *slot = Arc::new(ModelSnapshot {
            model: model.into(),
            version,
        });
        // Publish the version only after the snapshot is installed (see
        // the type docs for why this order keeps caches consistent).
        self.version.store(version, Ordering::Release);
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_linalg::Matrix;

    fn model(fill: f64) -> TcssModel {
        TcssModel::new(
            Matrix::filled(2, 2, fill),
            Matrix::filled(3, 2, fill),
            Matrix::filled(2, 2, fill),
        )
    }

    #[test]
    fn swap_bumps_version_and_publishes() {
        let h = ModelHandle::new(model(1.0));
        assert_eq!(h.version(), 1);
        assert_eq!(h.snapshot().version, 1);
        let pinned = h.snapshot();
        assert_eq!(h.swap(model(2.0)), 2);
        assert_eq!(h.version(), 2);
        let m2 = h.snapshot();
        assert_eq!(m2.model.as_f64().expect("f64 installed").u1.get(0, 0), 2.0);
        // The pre-swap pin still sees the old model, untouched.
        assert_eq!(pinned.version, 1);
        assert_eq!(
            pinned.model.as_f64().expect("f64 installed").u1.get(0, 0),
            1.0
        );
    }

    #[test]
    fn compact_model_swaps_like_any_other() {
        use crate::snapshot::{write_snapshot, QuantMode, SnapshotModel};
        let dir = std::env::temp_dir().join(format!("tcss-handle-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.tcsssnap");
        write_snapshot(&model(1.5), QuantMode::F32, &path).unwrap();
        let snap = SnapshotModel::open(&path).unwrap();

        let h = ModelHandle::new(model(1.0));
        assert_eq!(h.swap(snap), 2);
        let pinned = h.snapshot();
        assert!(pinned.model.as_compact().is_some());
        assert_eq!(pinned.model.dims(), model(1.0).dims());
        std::fs::remove_dir_all(&dir).ok();
    }
}
