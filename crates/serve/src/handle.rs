//! Swappable model handle with a monotonically increasing version.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tcss_core::TcssModel;

/// An immutable model pinned to the version it was published under.
///
/// Snapshots are what the serving hot path actually scores against: a
/// request batch clones one `Arc<ModelSnapshot>` up front and works on it
/// to completion, so a concurrent [`ModelHandle::swap`] can never tear a
/// batch (half old factors, half new) — the swap publishes a *new* snapshot
/// and in-flight batches keep the old one alive until they drop it.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// The published model.
    pub model: TcssModel,
    /// The version this model was published under (see [`ModelHandle`]).
    pub version: u64,
}

/// Epoch-style swappable handle to the serving model.
///
/// Design: readers never block on scoring-length critical sections and a
/// swap never waits for in-flight work.
///
/// * [`ModelHandle::snapshot`] pins the current epoch by cloning the inner
///   `Arc` — the `RwLock` read guard lives only for the duration of that
///   pointer clone (a few nanoseconds), never across any scoring work.
/// * [`ModelHandle::version`] is one `Relaxed` atomic load, so the cache
///   read path validates entries without touching the lock at all.
/// * [`ModelHandle::swap`] installs a new `Arc` under the write lock and
///   *then* bumps the version counter. Ordering matters: a cache entry is
///   only ever stored under the version of the snapshot that produced it,
///   and entries are valid only while their version equals the current one
///   — bumping after the install means no window exists where the new
///   version could validate an entry computed from the old model.
///
/// Versions start at 1 and increase by 1 per swap, never repeating, so a
/// version-keyed cache entry can never be revived by a later swap.
#[derive(Debug)]
pub struct ModelHandle {
    current: RwLock<Arc<ModelSnapshot>>,
    version: AtomicU64,
}

impl ModelHandle {
    /// Wrap an initial model as version 1.
    pub fn new(model: TcssModel) -> Self {
        ModelHandle {
            current: RwLock::new(Arc::new(ModelSnapshot { model, version: 1 })),
            version: AtomicU64::new(1),
        }
    }

    /// Pin the current snapshot (cheap: one `Arc` clone under a
    /// momentary read guard).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The currently published version — one atomic load, no lock.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publish `model` as the new current snapshot, returning its version.
    ///
    /// Every version-keyed cache entry produced from earlier snapshots is
    /// wholesale-invalidated by the version bump; in-flight batches pinned
    /// to an older snapshot run to completion on it.
    pub fn swap(&self, model: TcssModel) -> u64 {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        let version = slot.version + 1;
        *slot = Arc::new(ModelSnapshot { model, version });
        // Publish the version only after the snapshot is installed (see
        // the type docs for why this order keeps caches consistent).
        self.version.store(version, Ordering::Release);
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_linalg::Matrix;

    fn model(fill: f64) -> TcssModel {
        TcssModel::new(
            Matrix::filled(2, 2, fill),
            Matrix::filled(3, 2, fill),
            Matrix::filled(2, 2, fill),
        )
    }

    #[test]
    fn swap_bumps_version_and_publishes() {
        let h = ModelHandle::new(model(1.0));
        assert_eq!(h.version(), 1);
        assert_eq!(h.snapshot().version, 1);
        let pinned = h.snapshot();
        assert_eq!(h.swap(model(2.0)), 2);
        assert_eq!(h.version(), 2);
        assert_eq!(h.snapshot().model.u1.get(0, 0), 2.0);
        // The pre-swap pin still sees the old model, untouched.
        assert_eq!(pinned.version, 1);
        assert_eq!(pinned.model.u1.get(0, 0), 1.0);
    }
}
