//! Log-bucketed latency histograms with lock-free recording.
//!
//! [`LatencyHistogram`] is the serving layer's answer to "p99, not mean":
//! a fixed array of atomic counters whose bucket boundaries grow
//! geometrically, HdrHistogram-style. Values (nanoseconds, but any `u64`
//! works) are split into a power-of-two *group* and [`SUB_BUCKETS`] linear
//! sub-buckets inside it, so every bucket's width is at most
//! `1/SUB_BUCKETS` (6.25%) of its lower bound — quantile reads are exact
//! to within one bucket at every magnitude from nanoseconds to minutes.
//!
//! Recording is one `fetch_add` on the bucket plus one on the running sum
//! (`Relaxed`; counters are statistics, not synchronization).
//! [`LatencyHistogram::snapshot_and_reset`] swaps every bucket to zero
//! atomically *per bucket*: concurrent recorders never lose a sample —
//! each landed `record` shows up in exactly one snapshot — which is the
//! property the metrics-reset race test pins down.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two group (`2^SUB_BITS`).
pub const SUB_BITS: u32 = 4;
/// Sub-bucket count; also the value below which buckets are exact.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: groups cover the full `u64` range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index of `value`: identity below [`SUB_BUCKETS`], then
/// geometric groups of [`SUB_BUCKETS`] linear buckets.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let top = 63 - value.leading_zeros(); // >= SUB_BITS
    let group = (top - SUB_BITS + 1) as usize;
    let sub = ((value >> (top - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    group * SUB_BUCKETS + sub
}

/// Inclusive `(low, high)` value range of bucket `index` — the inverse of
/// [`bucket_index`]: every `v` with `bucket_index(v) == index` lies inside.
pub fn bucket_range(index: usize) -> (u64, u64) {
    let group = index / SUB_BUCKETS;
    let sub = (index % SUB_BUCKETS) as u64;
    if group == 0 {
        return (index as u64, index as u64);
    }
    let low = (SUB_BUCKETS as u64 + sub) << (group - 1);
    let width = 1u64 << (group - 1);
    (low, low.saturating_add(width - 1))
}

/// Fixed-size log-bucketed histogram with atomic counters.
///
/// All methods take `&self`; the histogram is meant to be shared across
/// recording threads (it lives inside the engine / server metrics blocks).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        // `[AtomicU64; BUCKETS]` has no const Default at this size; build
        // through a Vec once at construction time.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .expect("BUCKETS-long vector");
        LatencyHistogram {
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value (typically nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters (recorders keep going).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut count = 0u64;
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
            count += *c;
        }
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Atomically drain the histogram: every bucket is `swap(0)`-ed, so
    /// each recorded sample appears in exactly one snapshot even while
    /// recorders are running — counts are conserved across concurrent
    /// snapshot/reset and record calls (no lost or doubled samples).
    pub fn snapshot_and_reset(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut count = 0u64;
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.swap(0, Ordering::Relaxed);
            count += *c;
        }
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.swap(0, Ordering::Relaxed),
        }
    }
}

/// Plain-data view of a [`LatencyHistogram`] at one point in time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`BUCKETS` long; empty for `Default`).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (for means; quantiles use the buckets).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`; 0 on an empty histogram). Reported as the
    /// bucket's *high* edge, i.e. a conservative "at most" latency that is
    /// within one bucket (≤ 6.25% relative) of the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_range(i).1;
            }
        }
        bucket_range(BUCKETS - 1).1
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of the recorded values (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other`'s samples into `self` (for aggregating per-connection
    /// client histograms in the load generator).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_range_are_inverse() {
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_range(i);
            assert!(lo <= v && v <= hi, "v={v} idx={i} range=({lo},{hi})");
        }
    }

    #[test]
    fn bucket_width_is_bounded_relative() {
        for i in SUB_BUCKETS..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert!(
                hi - lo <= lo / SUB_BUCKETS as u64,
                "bucket {i}: ({lo},{hi})"
            );
        }
    }

    #[test]
    fn quantiles_on_known_values() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // Exact p50 is 500; the answer must land in a bucket adjacent to it.
        let p50 = s.p50();
        let d = bucket_index(p50).abs_diff(bucket_index(500));
        assert!(d <= 1, "p50={p50}");
        let p999 = s.p999();
        let d = bucket_index(p999).abs_diff(bucket_index(1000));
        assert!(d <= 1, "p999={p999}");
    }

    #[test]
    fn reset_drains_everything_once() {
        let h = LatencyHistogram::new();
        h.record(7);
        h.record(70_000);
        let first = h.snapshot_and_reset();
        assert_eq!(first.count, 2);
        assert_eq!(first.sum, 70_007);
        let second = h.snapshot_and_reset();
        assert_eq!(second.count, 0);
        assert_eq!(second.sum, 0);
    }
}
