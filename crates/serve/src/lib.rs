//! # tcss-serve
//!
//! High-throughput recommendation serving for the TCSS model.
//!
//! The training stack produces a [`tcss_core::TcssModel`]; this crate turns
//! one into a service-shaped engine built for heavy read traffic:
//!
//! * **Batched scoring** ([`ServingEngine::score_batch`]) — a batch of
//!   `(user, time)` requests becomes one `B × r` weight matrix `W` and a
//!   single `W · U²ᵀ` pass through the tiled, parallel
//!   [`tcss_linalg::Matrix::matmul_nt`]. The POI factor `U²` — by far the
//!   largest operand — is read once per cache-resident block and reused by
//!   every request row, instead of once per request as in per-request
//!   `scores_for` scans. Each batch row is **bit-for-bit** equal to
//!   `scores_for` on the same snapshot, at any thread count.
//! * **Version-keyed caches** ([`VersionedCache`]) — per-`(user, time)`
//!   weight vectors and per-`(user, time, n)` top-`n` results, sharded
//!   `RwLock` maps with `Arc` hand-out on the read path (no per-entry
//!   locks). A model swap invalidates everything wholesale by bumping the
//!   version — stale entries are unreachable immediately and reclaimed
//!   lazily or via [`ServingEngine::purge_stale`].
//! * **Epoch-style model swap** ([`ModelHandle`]) — readers pin an
//!   `Arc` snapshot (the lock is held only for the pointer clone);
//!   [`ServingEngine::swap_model`] publishes a new snapshot and bumps the
//!   monotone version. In-flight batches finish on the model they pinned;
//!   no request ever observes a half-swapped model.
//! * **Top-`n` selection** — `O(J)` partial selection with the
//!   deterministic ranking order of [`tcss_core::topn`] (descending
//!   score, ascending POI on ties), replacing the full sort.
//! * **Metrics** ([`ServingMetrics`]) — cache hit/miss counters and
//!   request counts as a plain snapshot struct, with per-stage latencies
//!   recorded into log-bucketed histograms ([`LatencyHistogram`]) for
//!   real p50/p99/p999 reads and race-free snapshot-and-reset scrapes.
//! * **Wire protocol** ([`net`], Unix only) — a from-scratch `poll(2)`
//!   readiness-loop server (no tokio) speaking a length-prefixed binary
//!   protocol over [`ServingEngine`], with deterministic `Overloaded`
//!   load shedding and graceful model swap under load; wire responses
//!   are bitwise-identical to in-process `recommend` calls.
//! * **Resilience** ([`net`] again; DESIGN.md §5g) — typed per-request
//!   deadlines, an idle-connection reaper, `catch_unwind` panic
//!   isolation with worker respawn, graceful drain
//!   ([`net::ServerHandle::drain`]), client-side capped-backoff retry
//!   ([`net::NetClient::recommend_with_retry`]), and a deterministic
//!   transport fault-injection harness ([`net::FaultyTransport`])
//!   asserting every fault yields a typed error or a bitwise-correct
//!   answer — never a hang, never a wrong score.
//!
//! ```no_run
//! use tcss_serve::{ScoreRequest, ServingEngine};
//! # fn model() -> tcss_core::TcssModel { unimplemented!() }
//!
//! let engine = ServingEngine::new(model());
//! let requests = vec![
//!     ScoreRequest { user: 7, time: 5 },
//!     ScoreRequest { user: 12, time: 5 },
//! ];
//! for top in engine.recommend_batch(&requests, 10).unwrap() {
//!     for &(poi, score) in top.iter() {
//!         println!("POI {poi}: {score:.3}");
//!     }
//! }
//! let retrained = model();
//! engine.swap_model(retrained); // caches invalidate wholesale
//! ```
//!
//! See `DESIGN.md` §5e for the serving performance model and
//! `crates/bench/src/bin/bench_serving.rs` for the throughput harness.

pub mod cache;
pub mod engine;
pub mod handle;
pub mod hist;
pub mod metrics;
#[cfg(unix)]
pub mod net;
pub mod snapshot;

pub use cache::{VersionedCache, DEFAULT_SHARDS};
pub use engine::{CacheStats, Ranking, ScoredBatch, ServingEngine};
pub use handle::{ModelHandle, ModelSnapshot, ServingModel};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use metrics::{ServingMetrics, StageHistograms};
pub use snapshot::{QuantMode, SnapError, SnapshotModel};

/// One scoring request: rank every POI for `user` at time unit `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScoreRequest {
    /// User index (`0..I`).
    pub user: usize,
    /// Time-unit index (`0..K`).
    pub time: usize,
}

/// Typed serving-path errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Request named a user index outside the model's user dimension.
    UserOutOfRange {
        /// Requested user index.
        user: usize,
        /// Number of users in the serving model.
        n_users: usize,
    },
    /// Request named a time unit outside the model's time dimension.
    TimeOutOfRange {
        /// Requested time-unit index.
        time: usize,
        /// Number of time units in the serving model.
        n_times: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range (model has {n_users} users)")
            }
            ServeError::TimeOutOfRange { time, n_times } => {
                write!(
                    f,
                    "time unit {time} out of range (model has {n_times} time units)"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}
