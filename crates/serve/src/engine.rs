//! The recommendation-serving engine: batched scoring over a swappable
//! model with version-keyed caches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tcss_core::topn;
use tcss_linalg::{lowp, Matrix};

use crate::cache::{VersionedCache, DEFAULT_SHARDS};
use crate::handle::{ModelHandle, ModelSnapshot, ServingModel};
use crate::metrics::{MetricsInner, ServingMetrics, StageHistograms};
use crate::snapshot::{QuantMode, SnapshotModel};
use crate::{ScoreRequest, ServeError};

/// Scores for one batch: row `b` holds the full `J`-long score vector of
/// request `b`, produced under `version` of the serving model.
#[derive(Debug, Clone)]
pub struct ScoredBatch {
    /// Model version the batch was scored against.
    pub version: u64,
    /// `B × J` score matrix (one row per request, one column per POI).
    pub scores: Matrix,
}

/// One served top-`n` answer: `(poi, score)` pairs in ranking order
/// (descending score, ascending POI on ties), shared with the top-`n`
/// cache — a hit clones the `Arc`, never the list.
pub type Ranking = Arc<Vec<(usize, f64)>>;

/// One cached per-`(user, time)` weight vector, in the precision of the
/// model that produced it. A version's entries are all one variant (the
/// installed model is either f64 or compact), and version keying means a
/// swap between precisions can never serve a stale-precision vector — but
/// lookups still match on variant defensively and treat a mismatch as a
/// miss.
#[derive(Debug)]
enum WeightVec {
    F64(Vec<f64>),
    F32(Vec<f32>),
}

/// Cache occupancy view (diagnostics/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries in the weight-vector cache (live + stale).
    pub weight_entries: usize,
    /// Weight entries tagged with a superseded version (unreachable).
    pub weight_stale: usize,
    /// Entries in the top-`n` cache (live + stale).
    pub topn_entries: usize,
    /// Top-`n` entries tagged with a superseded version (unreachable).
    pub topn_stale: usize,
}

/// High-throughput serving engine around a [`ModelHandle`].
///
/// The engine owns three pieces:
///
/// 1. **The model handle** — epoch-style snapshot swap with a monotone
///    version ([`ModelHandle`]). Every batch pins exactly one snapshot.
/// 2. **Version-keyed caches** — per-`(user, time)` weight vectors
///    (`h ⊙ U¹ᵢ ⊙ U³ₖ`, the `r`-long vector every request's `J` POI dots
///    share) and per-`(user, time, n)` top-`n` results. A model swap
///    invalidates both wholesale via the version bump.
/// 3. **Batched scoring** — the weight vectors of a batch are packed into
///    a `B × r` matrix `W` and all `B · J` scores come from one
///    `W · U²ᵀ` pass through [`Matrix::matmul_nt`], whose per-element
///    contract (`kernels::dot(w_row, u2_row)`) makes every batch row
///    **bit-for-bit** equal to [`TcssModel::scores_for`] on the same
///    snapshot, at any thread count.
///
/// All methods take `&self`; the engine is `Sync` and meant to be shared
/// (`Arc<ServingEngine>`) across request-handling threads.
#[derive(Debug)]
pub struct ServingEngine {
    handle: ModelHandle,
    weights: VersionedCache<(usize, usize), WeightVec>,
    topn: VersionedCache<(usize, usize, usize), Vec<(usize, f64)>>,
    metrics: MetricsInner,
    /// Monotone count of requests entered into `recommend_batch_pinned`
    /// over the engine's lifetime (never reset; the fault trigger below
    /// is keyed against it).
    request_seq: AtomicU64,
    /// Test-only injected-panic trigger (`u64::MAX` = disarmed): the
    /// absolute request-sequence index at which the next
    /// `recommend_batch_pinned` batch panics, consumed once — the
    /// serving-side mirror of `tcss_core::fault`'s epoch-keyed triggers.
    fault_panic_at: AtomicU64,
}

impl ServingEngine {
    /// Engine over `model` (f64 training model or compact snapshot) with
    /// the default cache shard count.
    pub fn new(model: impl Into<ServingModel>) -> Self {
        Self::with_shards(model, DEFAULT_SHARDS)
    }

    /// Engine over `model` with `shards` cache shards (rounded up to a
    /// power of two; higher counts reduce shard contention under many
    /// serving threads).
    pub fn with_shards(model: impl Into<ServingModel>, shards: usize) -> Self {
        ServingEngine {
            handle: ModelHandle::new(model),
            weights: VersionedCache::with_shards(shards),
            topn: VersionedCache::with_shards(shards),
            metrics: MetricsInner::default(),
            request_seq: AtomicU64::new(0),
            fault_panic_at: AtomicU64::new(u64::MAX),
        }
    }

    /// Arm a one-shot injected panic: the `recommend_batch_pinned` batch
    /// containing the `index`-th request ever entered (0-based, counted
    /// over the engine's lifetime) panics before scoring. Production code
    /// never calls this; it exists so the wire server's panic-isolation
    /// contract (typed `Internal` answers, surviving worker) can be
    /// driven through a real unwinding panic in tests. The trigger is
    /// consumed exactly once — after it fires, the replayed request runs
    /// clean, like a transient fault.
    pub fn inject_panic_at_request(&self, index: u64) {
        assert_ne!(index, u64::MAX, "u64::MAX is the disarmed sentinel");
        self.fault_panic_at.store(index, Ordering::SeqCst);
    }

    /// Requests entered into [`ServingEngine::recommend_batch_pinned`]
    /// so far (the sequence [`ServingEngine::inject_panic_at_request`]
    /// indexes into).
    pub fn requests_entered(&self) -> u64 {
        self.request_seq.load(Ordering::SeqCst)
    }

    /// Currently published model version.
    pub fn version(&self) -> u64 {
        self.handle.version()
    }

    /// Pin the current model snapshot (see [`ModelHandle::snapshot`]).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.handle.snapshot()
    }

    /// Publish a new model, returning its version. In-flight batches
    /// finish on the snapshot they pinned; every cache entry from earlier
    /// versions becomes unreachable immediately (and can be reclaimed with
    /// [`ServingEngine::purge_stale`]).
    pub fn swap_model(&self, model: impl Into<ServingModel>) -> u64 {
        let version = self.handle.swap(model);
        MetricsInner::add(&self.metrics.model_swaps, 1);
        version
    }

    /// Eagerly reclaim cache entries from superseded versions, returning
    /// `(weight_entries, topn_entries)` removed. Reclaimed counts
    /// accumulate into [`ServingMetrics::reaped_stale`] — the server's
    /// periodic maintenance tick calls this, so operators see reaping in
    /// the exit summary without a manual call.
    pub fn purge_stale(&self) -> (usize, usize) {
        let version = self.handle.version();
        let reaped = (
            self.weights.purge_stale(version),
            self.topn.purge_stale(version),
        );
        MetricsInner::add(&self.metrics.reaped_stale, (reaped.0 + reaped.1) as u64);
        reaped
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> ServingMetrics {
        self.metrics.snapshot()
    }

    /// Snapshot **and reset** counters and stage histograms. Per-cell
    /// atomic swaps make this race-free under concurrent recorders: every
    /// increment and latency sample lands in exactly one taken snapshot
    /// (none lost, none doubled) — the scrape pattern for dashboards.
    pub fn take_metrics(&self) -> (ServingMetrics, StageHistograms) {
        self.metrics.take()
    }

    /// Per-stage latency histograms (p50/p99/p999 via
    /// [`crate::hist::HistogramSnapshot`]); recorders keep going.
    pub fn stage_histograms(&self) -> StageHistograms {
        self.metrics.stage_histograms()
    }

    /// Cache occupancy (diagnostics/tests).
    pub fn cache_stats(&self) -> CacheStats {
        let version = self.handle.version();
        CacheStats {
            weight_entries: self.weights.len(),
            weight_stale: self.weights.stale_len(version),
            topn_entries: self.topn.len(),
            topn_stale: self.topn.stale_len(version),
        }
    }

    fn check_bounds(snap: &ModelSnapshot, req: &ScoreRequest) -> Result<(), ServeError> {
        let (n_users, _, n_times) = snap.model.dims();
        if req.user >= n_users {
            return Err(ServeError::UserOutOfRange {
                user: req.user,
                n_users,
            });
        }
        if req.time >= n_times {
            return Err(ServeError::TimeOutOfRange {
                time: req.time,
                n_times,
            });
        }
        Ok(())
    }

    /// Pack the batch's weight vectors into `W` (`B × r`, weight cache
    /// consulted per request) and score everything with one `W · U²ᵀ` —
    /// the f64 tiled matmul for a full-precision model, the low-precision
    /// [`lowp`] path (f32 weights against f32 or per-row-scaled i16
    /// factors, widened to f64 afterwards) for a compact snapshot.
    fn score_on(
        &self,
        snap: &ModelSnapshot,
        requests: &[ScoreRequest],
    ) -> Result<Matrix, ServeError> {
        match &snap.model {
            ServingModel::F64(model) => self.score_on_f64(snap, model, requests),
            ServingModel::Compact(compact) => self.score_on_compact(snap, compact, requests),
        }
    }

    fn score_on_f64(
        &self,
        snap: &ModelSnapshot,
        model: &tcss_core::TcssModel,
        requests: &[ScoreRequest],
    ) -> Result<Matrix, ServeError> {
        let r = model.rank();
        let t0 = Instant::now();
        let mut w = Matrix::zeros(requests.len(), r);
        let mut hits = 0u64;
        let mut scratch = Vec::with_capacity(r);
        for (b, req) in requests.iter().enumerate() {
            Self::check_bounds(snap, req)?;
            let key = (req.user, req.time);
            let mut hit = false;
            if let Some(cached) = self.weights.get(&key, snap.version) {
                if let WeightVec::F64(v) = &*cached {
                    w.row_mut(b).copy_from_slice(v);
                    hits += 1;
                    hit = true;
                }
            }
            if !hit {
                model.weight_vector_into(req.user, req.time, &mut scratch);
                w.row_mut(b).copy_from_slice(&scratch);
                self.weights
                    .insert(key, snap.version, Arc::new(WeightVec::F64(scratch.clone())));
            }
        }
        MetricsInner::add(&self.metrics.weight_hits, hits);
        MetricsInner::add(&self.metrics.weight_misses, requests.len() as u64 - hits);
        self.metrics.weight_build.record(elapsed_ns(t0));

        let t1 = Instant::now();
        let scores = w
            .matmul_nt(&model.u2)
            .expect("weight rows share the model's rank");
        self.metrics.score_matmul.record(elapsed_ns(t1));
        Ok(scores)
    }

    fn score_on_compact(
        &self,
        snap: &ModelSnapshot,
        compact: &SnapshotModel,
        requests: &[ScoreRequest],
    ) -> Result<Matrix, ServeError> {
        let r = compact.rank();
        let j = compact.dims().1;
        let t0 = Instant::now();
        let mut w = vec![0.0f32; requests.len() * r];
        let mut hits = 0u64;
        let mut scratch = (Vec::new(), Vec::new());
        let mut wbuf: Vec<f32> = Vec::with_capacity(r);
        for (b, req) in requests.iter().enumerate() {
            Self::check_bounds(snap, req)?;
            let key = (req.user, req.time);
            let mut hit = false;
            if let Some(cached) = self.weights.get(&key, snap.version) {
                if let WeightVec::F32(v) = &*cached {
                    w[b * r..(b + 1) * r].copy_from_slice(v);
                    hits += 1;
                    hit = true;
                }
            }
            if !hit {
                compact.weight_vector_into(req.user, req.time, &mut scratch, &mut wbuf);
                w[b * r..(b + 1) * r].copy_from_slice(&wbuf);
                self.weights
                    .insert(key, snap.version, Arc::new(WeightVec::F32(wbuf.clone())));
            }
        }
        MetricsInner::add(&self.metrics.weight_hits, hits);
        MetricsInner::add(&self.metrics.weight_misses, requests.len() as u64 - hits);
        self.metrics.weight_build.record(elapsed_ns(t0));

        let t1 = Instant::now();
        let mut low = vec![0.0f32; requests.len() * j];
        match compact.mode() {
            QuantMode::F32 => {
                lowp::matmul_nt_f32(&w, requests.len(), compact.u2_f32(), j, r, &mut low);
            }
            QuantMode::I16 => {
                let (q2, s2) = compact.u2_i16();
                lowp::matmul_nt_i16(&w, requests.len(), q2, s2, j, r, &mut low);
            }
        }
        // Widen once for selection: `Ranking` stays `(usize, f64)` so the
        // top-n cache, the wire protocol and the tie-break order are
        // precision-agnostic downstream of this point.
        let mut scores = Matrix::zeros(requests.len(), j);
        for (dst, &src) in scores.as_mut_slice().iter_mut().zip(&low) {
            *dst = f64::from(src);
        }
        self.metrics.score_matmul.record(elapsed_ns(t1));
        Ok(scores)
    }

    /// Score a whole batch: one snapshot pin, one packed `W · U²ᵀ` matmul.
    ///
    /// Row `b` of the result is bit-for-bit
    /// `snapshot.model.scores_for(requests[b].user, requests[b].time)`.
    pub fn score_batch(&self, requests: &[ScoreRequest]) -> Result<ScoredBatch, ServeError> {
        let snap = self.handle.snapshot();
        MetricsInner::add(&self.metrics.requests, requests.len() as u64);
        MetricsInner::add(&self.metrics.batches, 1);
        let scores = self.score_on(&snap, requests)?;
        Ok(ScoredBatch {
            version: snap.version,
            scores,
        })
    }

    /// Top-`n` recommendations for a whole batch, in request order.
    ///
    /// Cached `(user, time, n)` results are returned without scoring;
    /// the remaining requests are scored as one packed batch and selected
    /// with the deterministic ranking order of [`tcss_core::topn`]
    /// (descending score, ascending POI on ties) — so results are
    /// identical whether they came from the cache, a batch, or
    /// [`TcssModel::recommend`] on the same snapshot.
    pub fn recommend_batch(
        &self,
        requests: &[ScoreRequest],
        n: usize,
    ) -> Result<Vec<Ranking>, ServeError> {
        let (_, results) = self.recommend_batch_pinned(requests, n);
        results.into_iter().collect()
    }

    /// Per-request fallible variant of [`ServingEngine::recommend_batch`]
    /// that also reports the model version the batch was pinned to.
    ///
    /// This is the shape the wire front end needs: one out-of-range
    /// request in a pipelined burst must become a typed error *response*
    /// for that request alone, while the in-range rest are still scored as
    /// one packed batch — and every response must carry the version of the
    /// snapshot that produced it so swap-under-load behaviour is
    /// observable (and testable) end to end.
    pub fn recommend_batch_pinned(
        &self,
        requests: &[ScoreRequest],
        n: usize,
    ) -> (u64, Vec<Result<Ranking, ServeError>>) {
        let snap = self.handle.snapshot();
        MetricsInner::add(&self.metrics.requests, requests.len() as u64);
        MetricsInner::add(&self.metrics.batches, 1);

        // Injected-panic trigger (test harness; disarmed in production).
        // The batch containing the armed request index panics before any
        // scoring, and the CAS consumes the trigger so the retry of the
        // same request runs clean.
        let first = self
            .request_seq
            .fetch_add(requests.len() as u64, Ordering::SeqCst);
        let armed = self.fault_panic_at.load(Ordering::SeqCst);
        if armed != u64::MAX
            && armed >= first
            && armed - first < requests.len() as u64
            && self
                .fault_panic_at
                .compare_exchange(armed, u64::MAX, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            panic!("injected panic at request {armed} (serving fault harness)");
        }

        let mut out: Vec<Option<Result<Ranking, ServeError>>> = vec![None; requests.len()];
        let mut missed: Vec<usize> = Vec::new();
        let mut misses: Vec<ScoreRequest> = Vec::new();
        let mut hits = 0u64;
        for (b, req) in requests.iter().enumerate() {
            if let Err(e) = Self::check_bounds(&snap, req) {
                out[b] = Some(Err(e));
                continue;
            }
            let key = (req.user, req.time, n);
            if let Some(cached) = self.topn.get(&key, snap.version) {
                out[b] = Some(Ok(cached));
                hits += 1;
            } else {
                missed.push(b);
                misses.push(*req);
            }
        }
        MetricsInner::add(&self.metrics.topn_hits, hits);
        MetricsInner::add(&self.metrics.topn_misses, missed.len() as u64);

        if !missed.is_empty() {
            let scores = self
                .score_on(&snap, &misses)
                .expect("bounds were checked before batching");
            let t0 = Instant::now();
            for (row, &b) in missed.iter().enumerate() {
                let top = Arc::new(topn::top_n(scores.row(row), n));
                let req = &requests[b];
                self.topn
                    .insert((req.user, req.time, n), snap.version, top.clone());
                out[b] = Some(Ok(top));
            }
            self.metrics.select.record(elapsed_ns(t0));
        }
        let results = out
            .into_iter()
            .map(|v| v.expect("every request answered"))
            .collect();
        (snap.version, results)
    }

    /// Single-request convenience over [`ServingEngine::recommend_batch`].
    pub fn recommend(&self, user: usize, time: usize, n: usize) -> Result<Ranking, ServeError> {
        let mut got = self.recommend_batch(&[ScoreRequest { user, time }], n)?;
        Ok(got.pop().expect("one request, one answer"))
    }
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_core::{random_init, TcssModel};

    fn engine(seed: u64) -> ServingEngine {
        let (u1, u2, u3) = random_init((4, 9, 3), 3, seed);
        ServingEngine::new(TcssModel::new(u1, u2, u3))
    }

    #[test]
    fn batch_rows_match_scores_for_bitwise() {
        let e = engine(11);
        let snap = e.snapshot();
        let reqs = [
            ScoreRequest { user: 0, time: 0 },
            ScoreRequest { user: 3, time: 2 },
            ScoreRequest { user: 0, time: 0 }, // duplicate in one batch
        ];
        let batch = e.score_batch(&reqs).unwrap();
        for (b, req) in reqs.iter().enumerate() {
            let want = snap.model.scores_for(req.user, req.time);
            let got = batch.scores.row(b);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "request {b}");
            }
        }
        let m = e.metrics();
        assert_eq!(m.requests, 3);
        assert_eq!(m.weight_hits, 1, "duplicate request reuses the weights");
        assert_eq!(m.weight_misses, 2);
    }

    #[test]
    fn out_of_range_requests_are_typed_errors() {
        let e = engine(5);
        let bad_user = e.score_batch(&[ScoreRequest { user: 99, time: 0 }]);
        assert!(matches!(
            bad_user,
            Err(ServeError::UserOutOfRange { user: 99, .. })
        ));
        let bad_time = e.recommend(0, 99, 5);
        assert!(matches!(
            bad_time,
            Err(ServeError::TimeOutOfRange { time: 99, .. })
        ));
    }

    #[test]
    fn recommend_batch_serves_cache_hits_identically() {
        let e = engine(23);
        let reqs = [
            ScoreRequest { user: 1, time: 1 },
            ScoreRequest { user: 2, time: 0 },
        ];
        let cold = e.recommend_batch(&reqs, 4).unwrap();
        let warm = e.recommend_batch(&reqs, 4).unwrap();
        assert_eq!(cold, warm);
        let m = e.metrics();
        assert_eq!(m.topn_misses, 2);
        assert_eq!(m.topn_hits, 2);
        // Warm lookups never touched the weight path again.
        assert_eq!(m.weight_misses, 2);
    }
}
