//! Transport-level chaos suite: a deterministic [`TransportFaultPlan`]
//! drives stalls, partial writes, connection resets and byte corruption
//! through the wire front end, and every request must resolve to a
//! **typed error** or a response **bitwise identical** to in-process
//! `recommend` — never a hang (every read is timeout-bounded and the CI
//! job wraps the suite in a hard `timeout`), never a wrong score, and
//! the server must stay fully healthy after the storm.
//!
//! The fault catalogue and the per-fault expectations:
//!
//! | fault                  | expected resolution                        |
//! |------------------------|--------------------------------------------|
//! | clean request          | bitwise-correct `Ranking`                  |
//! | `StallMidFrame`        | bitwise-correct `Ranking` (decoder reassembles the split) |
//! | `PartialWrite`         | typed `Truncated` error, then clean close  |
//! | `Reset`                | transport dies; server absorbs the RST     |
//! | corrupt kind byte      | typed `Malformed` addressed to the salvaged id |
//! | corrupt id byte        | bitwise-correct `Ranking` under the corrupted id |

use std::sync::Arc;
use std::time::Duration;

use tcss_core::{random_init, TcssModel};
use tcss_serve::net::{
    ClientError, ErrorCode, FaultyTransport, NetClient, NetServer, ResponseBody, ServerConfig,
    TransportFault, TransportFaultPlan,
};
use tcss_serve::ServingEngine;

const DIMS: (usize, usize, usize) = (6, 41, 4);
const RANK: usize = 3;
const TOP_N: u32 = 7;
const REQUESTS: usize = 36;

fn model() -> TcssModel {
    let (u1, u2, u3) = random_init(DIMS, RANK, 9001);
    TcssModel::new(u1, u2, u3)
}

fn assert_bitwise(resp: &tcss_serve::net::Response, m: &TcssModel, user: usize, time: usize) {
    match &resp.body {
        ResponseBody::Ranking { items, .. } => {
            let want: Vec<(u64, u64)> = m
                .recommend(user, time, TOP_N as usize)
                .into_iter()
                .map(|(poi, score)| (poi as u64, score.to_bits()))
                .collect();
            assert_eq!(items.len(), want.len(), "({user},{time}): length");
            for (i, ((gp, gs), (wp, ws))) in items.iter().zip(&want).enumerate() {
                assert_eq!(gp, wp, "({user},{time}) rank {i}: poi");
                assert_eq!(gs.to_bits(), *ws, "({user},{time}) rank {i}: score bits");
            }
        }
        other => panic!("expected ranking for ({user},{time}), got {other:?}"),
    }
}

#[test]
fn every_fault_resolves_typed_or_bitwise_and_the_server_survives() {
    let m = model();
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    // The deterministic storm, keyed by request index — the serving
    // mirror of tcss_core::fault's epoch-keyed plans. Indices are spread
    // so every fault is preceded and followed by clean traffic.
    let plan = TransportFaultPlan::none()
        .fault_at(5, TransportFault::StallMidFrame { pause_ms: 40 })
        .fault_at(11, TransportFault::PartialWrite { bytes: 7 })
        .fault_at(17, TransportFault::Reset)
        // Offset 0 is the kind byte: deterministic Malformed.
        .fault_at(
            23,
            TransportFault::CorruptPayloadByte {
                offset: 0,
                mask: 0xFF,
            },
        )
        // Offset 1 is the correlation id's low byte: still a valid
        // request, answered under the corrupted id.
        .fault_at(
            29,
            TransportFault::CorruptPayloadByte {
                offset: 1,
                mask: 0x01,
            },
        );

    let mut transport =
        FaultyTransport::connect(handle.addr(), plan, Duration::from_secs(5)).expect("connect");

    let mut clean_answers = 0u64;
    for r in 0..REQUESTS {
        let (user, time) = (r % DIMS.0, r % DIMS.2);
        let (id, fault) = transport
            .send_recommend(user as u64, time as u64, TOP_N)
            .expect("send path never errors out of the harness");
        match fault {
            None | Some(TransportFault::StallMidFrame { .. }) => {
                // Clean or merely slow: the answer must be bitwise-exact
                // and carry our correlation id.
                let resp = transport.recv().expect("answered within the timeout");
                assert_eq!(resp.id, id, "request {r}: correlation id");
                assert_bitwise(&resp, &m, user, time);
                clean_answers += 1;
            }
            Some(TransportFault::PartialWrite { .. }) => {
                // Half a frame then FIN: typed truncation, never a hang.
                let resp = transport.recv().expect("typed answer before close");
                match &resp.body {
                    ResponseBody::Error { code, .. } => {
                        assert_eq!(*code, ErrorCode::Truncated, "request {r}")
                    }
                    other => panic!("request {r}: expected Truncated, got {other:?}"),
                }
                // The server closes after a protocol error; observe the
                // clean EOF, then restore the transport.
                match transport.recv() {
                    Err(ClientError::ServerClosed) => {}
                    other => panic!("request {r}: expected clean close, got {other:?}"),
                }
                transport
                    .reconnect()
                    .expect("reconnect after partial write");
            }
            Some(TransportFault::Reset) => {
                // The RST killed the transport client-side; the request
                // may or may not have been scored (the reset races the
                // server's read), but the server must absorb it either
                // way. No response to wait for — just reconnect.
                assert!(!transport.is_connected(), "reset kills the transport");
                transport.reconnect().expect("reconnect after reset");
            }
            Some(TransportFault::CorruptPayloadByte { offset: 0, .. }) => {
                // Kind byte flipped: typed Malformed, addressed to the
                // salvaged correlation id (bytes 1..9 were untouched).
                let resp = transport.recv().expect("typed answer");
                assert_eq!(resp.id, id, "request {r}: salvaged id");
                match &resp.body {
                    ResponseBody::Error { code, .. } => {
                        assert_eq!(*code, ErrorCode::Malformed, "request {r}")
                    }
                    other => panic!("request {r}: expected Malformed, got {other:?}"),
                }
            }
            Some(TransportFault::CorruptPayloadByte { .. }) => {
                // Id byte flipped: the request is valid — the server
                // answers it bitwise-correct under the id it saw.
                let resp = transport.recv().expect("answered within the timeout");
                assert_eq!(resp.id, id ^ 0x01, "request {r}: corrupted id echoed");
                assert_bitwise(&resp, &m, user, time);
            }
        }
    }
    assert_eq!(transport.faults_remaining(), 0, "the whole plan fired");
    assert_eq!(
        clean_answers,
        REQUESTS as u64 - 4,
        "all non-fatal requests answered"
    );

    // --- post-storm health -------------------------------------------------
    // A fresh client sweeps the full key space; every answer bitwise.
    let mut client = NetClient::connect(handle.addr()).expect("connect after storm");
    for user in 0..DIMS.0 {
        for time in 0..DIMS.2 {
            let resp = client
                .recommend(user as u64, time as u64, TOP_N)
                .expect("healthy after the storm");
            assert_bitwise(&resp, &m, user, time);
        }
    }

    let metrics = handle.metrics();
    assert_eq!(metrics.panics, 0, "no fault reached the engine as a panic");
    assert_eq!(metrics.worker_restarts, 0, "no worker died");
    assert_eq!(metrics.overloaded, 0, "deep queue never shed");
    // Typed protocol failures observed: the truncated half-frame and the
    // corrupted kind byte. (The reset may or may not register depending
    // on how far the kernel delivered the final frame.)
    assert!(
        metrics.protocol_errors >= 2,
        "truncation + corruption surfaced as protocol errors, got {}",
        metrics.protocol_errors
    );
    assert!(
        metrics.errors >= 2,
        "typed error responses were sent for the protocol failures"
    );
}

#[test]
fn stall_longer_than_idle_timeout_is_reaped_not_hung() {
    let m = model();
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(70)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    // A stall well past the idle timeout: the reaper closes the
    // connection mid-pause, so finishing the frame fails or the read
    // sees the close — but nothing hangs and the request is simply
    // never answered wrongly.
    let plan =
        TransportFaultPlan::none().fault_at(1, TransportFault::StallMidFrame { pause_ms: 400 });
    let mut transport =
        FaultyTransport::connect(handle.addr(), plan, Duration::from_secs(5)).expect("connect");

    // Request 0 is clean and must be bitwise-correct.
    let (id, fault) = transport.send_recommend(1, 2, TOP_N).expect("clean send");
    assert!(fault.is_none());
    let resp = transport.recv().expect("clean request answered");
    assert_eq!(resp.id, id);
    assert_bitwise(&resp, &m, 1, 2);

    // Request 1 stalls mid-frame past the reaper bound. The second half
    // of the frame may fail to send (connection already closed) — both
    // outcomes are legal; a *response* with wrong bits is not.
    match transport.send_recommend(3, 1, TOP_N) {
        Ok((_, Some(TransportFault::StallMidFrame { .. }))) => match transport.recv() {
            Err(_) => {}
            Ok(resp) => panic!("reaped half-frame must not be answered, got {resp:?}"),
        },
        Ok((_, f)) => panic!("expected the stall fault, got {f:?}"),
        Err(_) => {} // write failed against the reaped socket: fine
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.metrics().reaped_idle < 1 {
        assert!(std::time::Instant::now() < deadline, "reap not observed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Server still healthy.
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    let resp = client.recommend(0, 3, TOP_N).expect("served after reap");
    assert_bitwise(&resp, &m, 0, 3);
}
