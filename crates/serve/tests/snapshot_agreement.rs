//! Scoring agreement between compact snapshots and the f64 model.
//!
//! The compact formats are *lossy* (f32 rounding, i16 fixed-point), so
//! "correct" cannot mean bitwise — it means an **explicit error budget**:
//!
//! * every per-POI score differs from the f64 reference by at most an
//!   *a-priori* bound derived from the format (f32 epsilon / i16 scale),
//!   computed here independently of the implementation — a wrong row, a
//!   swapped factor or a bad scale blows past it immediately;
//! * top-n membership may differ only where the f64 scores were already
//!   within twice that budget of each other — a **quantization tie
//!   reordered**, never a **wrong POI surfaced**;
//! * on models whose score gaps exceed the i16 budget, ranks are
//!   *exactly* equal (the documented scale-bound contract);
//! * exact ties keep the deterministic order of [`tcss_core::topn`]
//!   (descending score, ascending POI) under both paths, and
//!   sub-f32-resolution perturbations that collapse to ties under
//!   quantization reorder only *within* their collapsed group;
//! * the engine's batched compact matmul is bit-for-bit the snapshot's
//!   per-request [`SnapshotModel::scores_for`], mirroring the f64
//!   batched-vs-`scores_for` contract.

use std::path::PathBuf;

use proptest::prelude::*;
use tcss_core::{random_init, topn, TcssModel};
use tcss_linalg::Matrix;
use tcss_serve::snapshot::{write_snapshot, SnapshotModel};
use tcss_serve::{QuantMode, ScoreRequest, ServingEngine};

const TOP_N: usize = 10;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tcss-snapagree-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn snap_of(m: &TcssModel, mode: QuantMode, tag: &str) -> (SnapshotModel, PathBuf) {
    let dir = tmpdir(tag);
    let path = dir.join(format!("{}.tcsssnap", mode));
    write_snapshot(m, mode, &path).expect("write snapshot");
    (SnapshotModel::open(&path).expect("open snapshot"), dir)
}

fn rand_model(dims: (usize, usize, usize), r: usize, seed: u64) -> TcssModel {
    let (u1, u2, u3) = random_init(dims, r, seed);
    let mut m = TcssModel::new(u1, u2, u3);
    m.h = (0..r).map(|t| 0.6 + 0.09 * t as f64).collect();
    m
}

/// Per-row i16 scale exactly as the writer derives it: `max_abs / 32767`
/// rounded to f32. Restated here so the budget is independent of the
/// implementation under test.
fn i16_scale(row: &[f64]) -> f64 {
    let max_abs = row.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    f64::from((max_abs / 32767.0) as f32)
}

/// A-priori per-POI error budget for `|snap.scores_for - f64 scores_for|`
/// at `(user, time)`, from format parameters alone (with a 4x safety
/// factor on the rounding analysis). Everything is computed from the f64
/// model, never from the snapshot.
fn score_budget(m: &TcssModel, mode: QuantMode, user: usize, time: usize) -> Vec<f64> {
    let r = m.rank();
    let j = m.dims().1;
    let eps = f64::from(f32::EPSILON);
    let mut w = Vec::new();
    m.weight_vector_into(user, time, &mut w);
    match mode {
        QuantMode::F32 => {
            // Each stored factor entry and each arithmetic step rounds at
            // f32 precision; the dot over r terms accumulates ~r more.
            (0..j)
                .map(|p| {
                    let l1: f64 = (0..r).map(|t| (w[t] * m.u2.get(p, t)).abs()).sum();
                    4.0 * (r as f64 + 8.0) * eps * (l1 + f64::MIN_POSITIVE)
                })
                .collect()
        }
        QuantMode::I16 => {
            // Dequantization error is 0.5 * scale per entry (0.51 covers
            // the f32 rounding slop on the scale itself), propagated
            // through w = h .* u1 .* u3 and the scaled dot.
            let s1 = 0.51 * i16_scale(m.u1.row(user));
            let s3 = 0.51 * i16_scale(m.u3.row(time));
            let werr: Vec<f64> = (0..r)
                .map(|t| {
                    let (a, c, h) = (m.u1.get(user, t), m.u3.get(time, t), m.h[t]);
                    h.abs() * (c.abs() * s1 + a.abs() * s3 + s1 * s3) + 4.0 * eps * w[t].abs()
                })
                .collect();
            (0..j)
                .map(|p| {
                    let s2 = 0.51 * i16_scale(m.u2.row(p));
                    let term: f64 = (0..r)
                        .map(|t| {
                            let u = m.u2.get(p, t).abs();
                            werr[t] * (u + s2) + w[t].abs() * s2 + eps * (w[t] * u).abs()
                        })
                        .sum();
                    4.0 * (r as f64 + 8.0) * (term + f64::MIN_POSITIVE)
                })
                .collect()
        }
    }
}

fn mode_of(flag: bool) -> QuantMode {
    if flag {
        QuantMode::I16
    } else {
        QuantMode::F32
    }
}

fn topn_set(scores: &[f64], n: usize) -> Vec<usize> {
    topn::top_n(scores, n).iter().map(|&(p, _)| p).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every per-POI score is inside the a-priori budget, and any top-n
    /// membership difference is a quantization tie (f64 gap within twice
    /// the budget), never a wrong POI.
    #[test]
    fn scores_and_topn_stay_inside_error_budget(
        (mode_sel, seed, users, pois, r) in
            (0usize..2, 0u64..1000, 3usize..12, 16usize..60, 2usize..9)
    ) {
        let mode = mode_of(mode_sel == 1);
        let m = rand_model((users, pois, 4), r, seed);
        let (snap, dir) = snap_of(&m, mode, "budget");
        for (user, time) in [(0, 0), (users / 2, 1), (users - 1, 3)] {
            let exact = m.scores_for(user, time);
            let approx = snap.scores_for(user, time);
            let budget = score_budget(&m, mode, user, time);
            let mut max_budget = 0.0f64;
            for p in 0..pois {
                let err = (exact[p] - approx[p]).abs();
                prop_assert!(
                    err <= budget[p],
                    "({user},{time}) poi {p}: err {err:e} > budget {:e} [{mode}]",
                    budget[p]
                );
                max_budget = max_budget.max(budget[p]);
            }
            let want = topn_set(&exact, TOP_N);
            let got = topn_set(&approx, TOP_N);
            let floor = got
                .iter()
                .map(|&p| exact[p])
                .fold(f64::INFINITY, f64::min);
            for &p in want.iter().filter(|p| !got.contains(p)) {
                let gap = exact[p] - floor;
                prop_assert!(
                    gap <= 2.0 * max_budget,
                    "poi {p} dropped from top-{TOP_N} despite f64 gap {gap:e} > \
                     2x budget {max_budget:e} — wrong POI, not a quantization tie [{mode}]"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The acceptance-criterion agreement rate, pinned on a deterministic
/// fixture large enough to be meaningful: mean top-10 membership overlap
/// across every (user, time) pair.
#[test]
fn top10_agreement_meets_acceptance_thresholds() {
    let (users, times) = (120, 6);
    let m = rand_model((users, 400, times), 8, 20260808);
    for (mode, threshold) in [(QuantMode::F32, 0.999), (QuantMode::I16, 0.97)] {
        let (snap, dir) = snap_of(&m, mode, "accept");
        let mut overlap = 0usize;
        let mut slots = 0usize;
        for user in 0..users {
            for time in 0..times {
                let want = topn_set(&m.scores_for(user, time), TOP_N);
                let got = topn_set(&snap.scores_for(user, time), TOP_N);
                overlap += want.iter().filter(|p| got.contains(p)).count();
                slots += TOP_N;
            }
        }
        let rate = overlap as f64 / slots as f64;
        assert!(
            rate >= threshold,
            "top-10 agreement {rate:.5} < {threshold} for {mode}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// On a model whose score gaps exceed the i16 budget, ranks agree
/// *exactly* over the full POI list — the documented scale-bound
/// contract, not just top-n set agreement.
#[test]
fn i16_ranks_exactly_match_on_separated_model() {
    let (i, j, k, r) = (3, 40, 2, 4);
    let u1 = Matrix::from_fn(i, r, |u, t| 0.3 + 0.1 * (u + t) as f64);
    // Each POI row is constant, so scores are strictly increasing in j
    // with gaps far above the i16 budget (~1e-5 relative).
    let u2 = Matrix::from_fn(j, r, |p, _| 0.01 * (p + 1) as f64);
    let u3 = Matrix::from_fn(k, r, |s, t| 0.5 + 0.05 * (s + t) as f64);
    let mut m = TcssModel::new(u1, u2, u3);
    m.h = vec![1.0; r];
    let (snap, dir) = snap_of(&m, QuantMode::I16, "sep");
    for user in 0..i {
        for time in 0..k {
            let want: Vec<usize> = topn::top_n(&m.scores_for(user, time), j)
                .iter()
                .map(|&(p, _)| p)
                .collect();
            let got: Vec<usize> = topn::top_n(&snap.scores_for(user, time), j)
                .iter()
                .map(|&(p, _)| p)
                .collect();
            assert_eq!(want, got, "i16 rank order diverged at ({user},{time})");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Exact ties (duplicated POI rows) keep the deterministic ranking order
/// — descending score, ascending POI — under both the f64 path and both
/// compact modes, so tie-break behaviour survives quantization.
#[test]
fn exact_ties_break_by_ascending_poi_in_both_paths() {
    let (i, j, k, r) = (2, 12, 2, 3);
    let u1 = Matrix::from_fn(i, r, |u, t| 0.4 + 0.07 * (u * r + t) as f64);
    // Four distinct score levels, each duplicated across three POIs.
    let u2 = Matrix::from_fn(j, r, |p, t| 0.05 * ((p / 3) + 1) as f64 + 0.01 * t as f64);
    let u3 = Matrix::from_fn(k, r, |s, t| 0.6 + 0.04 * (s + t) as f64);
    let mut m = TcssModel::new(u1, u2, u3);
    m.h = vec![0.9, 1.0, 1.1];
    let want = topn::top_n(&m.scores_for(1, 1), j);
    for group in want.chunks(3) {
        assert!(
            group.windows(2).all(|w| w[0].0 < w[1].0),
            "tied group not in ascending POI order: {group:?}"
        );
    }
    for mode in [QuantMode::F32, QuantMode::I16] {
        let (snap, dir) = snap_of(&m, mode, "ties");
        let got = topn::top_n(&snap.scores_for(1, 1), j);
        let want_pois: Vec<usize> = want.iter().map(|&(p, _)| p).collect();
        let got_pois: Vec<usize> = got.iter().map(|&(p, _)| p).collect();
        assert_eq!(want_pois, got_pois, "tie order diverged under {mode}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Score differences far below f32 resolution collapse to exact ties in
/// the snapshot; the resulting reorder must stay *within* the collapsed
/// pair (tie re-broken by POI id) and never cross pairs (which would be
/// a genuinely wrong POI).
#[test]
fn sub_f32_ties_reorder_only_within_collapsed_groups() {
    let (i, j, k, r) = (2, 16, 2, 3);
    let u1 = Matrix::from_fn(i, r, |u, t| 0.5 + 0.03 * (u + t) as f64);
    // POIs come in pairs: 2g and 2g+1 differ by 1e-12 — far below the
    // f32 ulp at this magnitude (~6e-9) — and pairs are separated by
    // 0.02, far above any quantization error.
    let u2 = Matrix::from_fn(j, r, |p, _| {
        0.02 * ((p / 2) + 1) as f64 + if p % 2 == 1 { 1e-12 } else { 0.0 }
    });
    let u3 = Matrix::from_fn(k, r, |s, t| 0.7 + 0.02 * (s + t) as f64);
    let mut m = TcssModel::new(u1, u2, u3);
    m.h = vec![1.0; r];
    let (snap, dir) = snap_of(&m, QuantMode::F32, "subulp");
    for (user, time) in [(0, 0), (1, 1)] {
        let exact = m.scores_for(user, time);
        let approx = snap.scores_for(user, time);
        let want: Vec<usize> = topn::top_n(&exact, j).iter().map(|&(p, _)| p).collect();
        let got: Vec<usize> = topn::top_n(&approx, j).iter().map(|&(p, _)| p).collect();
        // In f64 the +1e-12 member of each pair wins; under f32 collapse
        // the pair ties exactly and re-breaks ascending. Group sequence
        // (pair ids) must be identical — reorders stay inside a pair.
        let want_groups: Vec<usize> = want.iter().map(|p| p / 2).collect();
        let got_groups: Vec<usize> = got.iter().map(|p| p / 2).collect();
        assert_eq!(
            want_groups, got_groups,
            "collapse reordered across pairs at ({user},{time})"
        );
        for pair in got.chunks(2) {
            assert!(
                pair[0] < pair[1],
                "collapsed tie not re-broken by ascending POI: {pair:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The engine's batched compact path (packed W, `lowp` matmul) is
/// bit-for-bit the snapshot's per-request `scores_for` — the same
/// contract the f64 path pins in `serving_parity.rs`.
#[test]
fn engine_batch_rows_bitwise_match_snapshot_scores_for() {
    let m = rand_model((9, 37, 4), 6, 77);
    for mode in [QuantMode::F32, QuantMode::I16] {
        let dir = tmpdir("batchwise");
        let path = dir.join(format!("{mode}.tcsssnap"));
        write_snapshot(&m, mode, &path).expect("write");
        let reference = SnapshotModel::open(&path).expect("open reference");
        let engine = ServingEngine::new(SnapshotModel::open(&path).expect("open engine copy"));
        let requests: Vec<ScoreRequest> = (0..9)
            .map(|b| ScoreRequest {
                user: b % 9,
                time: (b * 3) % 4,
            })
            .collect();
        let batch = engine.score_batch(&requests).expect("score batch");
        for (b, req) in requests.iter().enumerate() {
            let want = reference.scores_for(req.user, req.time);
            let got = batch.scores.row(b);
            assert_eq!(want.len(), got.len());
            for (p, (w, g)) in want.iter().zip(got).enumerate() {
                assert_eq!(
                    w.to_bits(),
                    g.to_bits(),
                    "batch row {b} poi {p} diverged from scores_for [{mode}]"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Swapping between the f64 model and a compact snapshot behaves like any
/// other swap: the version bumps, stale cache entries become reapable,
/// and results on the new snapshot stay inside the error budget.
#[test]
fn swap_f64_to_compact_invalidates_caches_and_keeps_serving() {
    let m = rand_model((8, 50, 3), 5, 404);
    let engine = ServingEngine::new(m.clone());
    let before = engine.recommend(2, 1, TOP_N).expect("f64 recommend");
    let v0 = engine.version();

    let dir = tmpdir("swap");
    let path = dir.join("m.tcsssnap");
    write_snapshot(&m, QuantMode::F32, &path).expect("write");
    let v1 = engine.swap_model(SnapshotModel::open(&path).expect("open"));
    assert!(v1 > v0, "swap must bump the version");

    let (weights, topn_entries) = engine.purge_stale();
    assert!(
        weights + topn_entries > 0,
        "stale f64-era cache entries should be reaped after the swap"
    );

    let after = engine.recommend(2, 1, TOP_N).expect("compact recommend");
    let want: Vec<usize> = before.iter().map(|&(p, _)| p).collect();
    let got: Vec<usize> = after.iter().map(|&(p, _)| p).collect();
    assert_eq!(want, got, "top-{TOP_N} diverged across an f32 swap");
    let stats = engine.cache_stats();
    assert_eq!(stats.weight_entries + stats.topn_entries, 2);
    std::fs::remove_dir_all(&dir).ok();
}
