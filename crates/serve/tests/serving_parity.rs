//! Serving-layer parity and invalidation suite.
//!
//! Pins the three contracts the serving engine is built on:
//!
//! 1. **Batched ≡ per-request, bitwise.** Every row of a batched
//!    `score_batch` equals `TcssModel::scores_for` for that request by
//!    `f64::to_bits`, property-tested over random dims/rank/batch shapes
//!    at 1, 2 and 4 threads, on cold and warm caches.
//! 2. **Caches are invisible.** Warm-cache answers equal cold-cache
//!    answers exactly, for both score vectors and top-`n` results.
//! 3. **Swap invalidates wholesale.** A model swap bumps the version,
//!    post-swap answers equal a fresh engine on the new model bitwise,
//!    and no pre-swap cache entry survives a purge.

use proptest::prelude::*;
use tcss_core::{random_init, topn, TcssModel};
use tcss_linalg::set_num_threads;
use tcss_serve::{ScoreRequest, ServingEngine};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn model_from(dims: (usize, usize, usize), rank: usize, seed: u64) -> TcssModel {
    let (u1, u2, u3) = random_init(dims, rank, seed);
    TcssModel::new(u1, u2, u3)
}

fn row_bits(scores: &[f64]) -> Vec<u64> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// Random dims, rank, batch of in-range requests, and a model seed. POI
/// counts straddle the 64-wide matmul_nt block boundary; batch sizes
/// cover empty, single, duplicate-heavy and multi-chunk shapes.
#[allow(clippy::type_complexity)]
fn case_strategy() -> impl Strategy<Value = ((usize, usize, usize), usize, Vec<(usize, usize)>, u64)>
{
    (1usize..8, 1usize..80, 1usize..6).prop_flat_map(|(i, j, k)| {
        (
            1usize..=6,
            proptest::collection::vec((0..i, 0..k), 0..24),
            0u64..1000,
        )
            .prop_map(move |(r, reqs, seed)| ((i, j, k), r, reqs, seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched scoring is bitwise identical to `scores_for` per request,
    /// at every thread count, cold and warm.
    #[test]
    fn batched_scores_match_scores_for_bitwise(
        (dims, rank, reqs, seed) in case_strategy()
    ) {
        let model = model_from(dims, rank, seed);
        let requests: Vec<ScoreRequest> = reqs
            .iter()
            .map(|&(user, time)| ScoreRequest { user, time })
            .collect();
        let want: Vec<Vec<u64>> = requests
            .iter()
            .map(|q| row_bits(&model.scores_for(q.user, q.time)))
            .collect();
        let engine = ServingEngine::new(model);
        for threads in THREAD_COUNTS {
            set_num_threads(Some(threads));
            for round in 0..2 {
                // Round 0 is (partially) cold, round 1 fully cache-warm.
                let batch = engine.score_batch(&requests).unwrap();
                prop_assert_eq!(batch.scores.rows(), requests.len());
                for (b, want_row) in want.iter().enumerate() {
                    prop_assert_eq!(
                        &row_bits(batch.scores.row(b)),
                        want_row,
                        "request {} at {} threads (round {})",
                        b,
                        threads,
                        round
                    );
                }
            }
        }
        set_num_threads(None);
    }

    /// recommend_batch equals per-request `TcssModel::recommend` (and its
    /// full-sort reference) exactly, cold and warm, at every thread count.
    #[test]
    fn batched_recommendations_match_model_recommend(
        (dims, rank, reqs, seed) in case_strategy()
    ) {
        let model = model_from(dims, rank, seed);
        let n = 1 + (seed as usize % (dims.1 + 2)); // spans n > J too
        let requests: Vec<ScoreRequest> = reqs
            .iter()
            .map(|&(user, time)| ScoreRequest { user, time })
            .collect();
        let want: Vec<Vec<(usize, f64)>> = requests
            .iter()
            .map(|q| model.recommend(q.user, q.time, n))
            .collect();
        for q in &requests {
            prop_assert_eq!(
                model.recommend(q.user, q.time, n),
                model.recommend_full_sort(q.user, q.time, n)
            );
        }
        let engine = ServingEngine::new(model);
        for threads in THREAD_COUNTS {
            set_num_threads(Some(threads));
            for round in 0..2 {
                let got = engine.recommend_batch(&requests, n).unwrap();
                for (b, (g, w)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        g.as_slice(),
                        w.as_slice(),
                        "request {} at {} threads (round {})",
                        b,
                        threads,
                        round
                    );
                }
            }
        }
        set_num_threads(None);
    }
}

/// A swap bumps the version, post-swap answers match a fresh engine on the
/// new model bitwise, and no pre-swap entry survives.
#[test]
fn model_swap_invalidates_every_cache_entry() {
    let dims = (5, 70, 4);
    let old = model_from(dims, 4, 7);
    let new = model_from(dims, 4, 8);
    let requests: Vec<ScoreRequest> = (0..dims.0)
        .flat_map(|user| (0..dims.2).map(move |time| ScoreRequest { user, time }))
        .collect();

    let engine = ServingEngine::new(old);
    assert_eq!(engine.version(), 1);
    // Warm both caches under version 1.
    engine.recommend_batch(&requests, 10).unwrap();
    engine.recommend_batch(&requests, 10).unwrap();
    let warm = engine.cache_stats();
    assert_eq!(warm.weight_entries, requests.len());
    assert_eq!(warm.topn_entries, requests.len());
    assert_eq!(warm.weight_stale + warm.topn_stale, 0);
    assert_eq!(engine.metrics().topn_hits, requests.len() as u64);

    // Swap: version bumps, every warm entry is now stale (unreachable).
    assert_eq!(engine.swap_model(new.clone()), 2);
    assert_eq!(engine.version(), 2);
    assert_eq!(engine.metrics().model_swaps, 1);
    let stats = engine.cache_stats();
    assert_eq!(stats.weight_stale, requests.len());
    assert_eq!(stats.topn_stale, requests.len());

    // Eager purge reclaims exactly the stale population.
    let (w_purged, t_purged) = engine.purge_stale();
    assert_eq!(w_purged, requests.len());
    assert_eq!(t_purged, requests.len());
    let purged = engine.cache_stats();
    assert_eq!(purged.weight_entries + purged.topn_entries, 0);

    // Post-swap answers are the new model's, bitwise — identical to a
    // fresh engine that never held a stale entry.
    let hits_before = engine.metrics().topn_hits;
    let fresh = ServingEngine::new(new);
    let got = engine.recommend_batch(&requests, 10).unwrap();
    let want = fresh.recommend_batch(&requests, 10).unwrap();
    assert_eq!(got, want);
    assert_eq!(
        engine.metrics().topn_hits,
        hits_before,
        "post-swap lookups must all miss"
    );

    // The repopulated cache serves the same new-model answers.
    let warm_again = engine.recommend_batch(&requests, 10).unwrap();
    assert_eq!(warm_again, got);

    // Lazy path: a second swap without purging. Stale entries are
    // unreachable (all lookups miss) and re-serving the same keys evicts
    // them in place — no stale entry survives under a re-used key.
    engine.swap_model(model_from(dims, 4, 9));
    assert_eq!(engine.cache_stats().topn_stale, requests.len());
    let hits_before = engine.metrics().topn_hits;
    engine.recommend_batch(&requests, 10).unwrap();
    assert_eq!(
        engine.metrics().topn_hits,
        hits_before,
        "lookups after the second swap must all miss"
    );
    let relived = engine.cache_stats();
    assert_eq!(relived.weight_stale + relived.topn_stale, 0);
    assert_eq!(relived.topn_entries, requests.len());
}

/// An in-flight snapshot keeps scoring the old model after a swap — the
/// epoch pin, not the handle, decides what a batch sees.
#[test]
fn pinned_snapshot_survives_swap() {
    let dims = (3, 20, 3);
    let old = model_from(dims, 3, 1);
    let engine = ServingEngine::new(old.clone());
    let pinned = engine.snapshot();
    engine.swap_model(model_from(dims, 3, 2));
    assert_eq!(pinned.version, 1);
    let want = row_bits(&old.scores_for(2, 1));
    assert_eq!(row_bits(&pinned.model.scores_for(2, 1)), want);
}

/// Concurrent scoring against concurrent swaps: every answer must equal
/// one of the published models' answers — never a torn mix — and the
/// engine must stay consistent under contention.
#[test]
fn concurrent_swaps_never_tear_batches() {
    let dims = (4, 48, 3);
    let models: Vec<TcssModel> = (0..4).map(|s| model_from(dims, 3, 100 + s)).collect();
    let request = ScoreRequest { user: 1, time: 2 };
    let answers: Vec<Vec<u64>> = models
        .iter()
        .map(|m| row_bits(&m.scores_for(request.user, request.time)))
        .collect();
    let engine = ServingEngine::new(models[0].clone());
    std::thread::scope(|s| {
        let swapper = s.spawn(|| {
            for m in &models[1..] {
                engine.swap_model(m.clone());
                std::thread::yield_now();
            }
        });
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..200 {
                    let batch = engine.score_batch(&[request]).unwrap();
                    let got = row_bits(batch.scores.row(0));
                    assert!(
                        answers.contains(&got),
                        "scored row matches no published model"
                    );
                }
            });
        }
        swapper.join().unwrap();
    });
    assert_eq!(engine.version(), models.len() as u64);
    // After the dust settles, the engine serves exactly the last model.
    let batch = engine.score_batch(&[request]).unwrap();
    assert_eq!(&row_bits(batch.scores.row(0)), answers.last().unwrap());
}

/// The topn cache is keyed by `n` as well: different `n` for the same
/// `(user, time)` must not collide.
#[test]
fn topn_cache_keyed_by_n() {
    let model = model_from((3, 15, 3), 3, 42);
    let engine = ServingEngine::new(model.clone());
    let r5 = engine.recommend(1, 1, 5).unwrap();
    let r10 = engine.recommend(1, 1, 10).unwrap();
    assert_eq!(r5.len(), 5);
    assert_eq!(r10.len(), 10);
    assert_eq!(r5.as_slice(), &r10[..5]);
    assert_eq!(topn::top_n(&model.scores_for(1, 1), 5), *r5);
}
