//! Corruption detection for the `.tcsssnap` format.
//!
//! The snapshot module's integrity contract (module docs, DESIGN.md §5h)
//! is that a snapshot either loads in full or fails with a typed
//! [`SnapError`] — never a garbage model. This suite property-tests that
//! contract the way PR 2 pinned the checkpoint format:
//!
//! * **every truncation point** (header, payload, mid-field, last byte)
//!   refuses to load, under the full-verify `open` *and* the O(1)
//!   `open_fast` (the header pins the exact file length, so `open_fast`
//!   catches truncation without scanning the payload);
//! * **every single-bit flip** refuses the full-verify `open` — header
//!   flips (fields *and* padding, both covered by the whole-page header
//!   digest) are also caught by `open_fast`, while payload flips are
//!   documented as `open_fast`'s blind spot and asserted to be exactly
//!   that — caught by `open`, admitted by `open_fast`;
//! * targeted field corruption (version skew, unknown quant mode,
//!   inconsistent dims) maps to its specific typed variant even when the
//!   header digest is recomputed to match — the reader cross-validates,
//!   not just checksums.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use tcss_core::{random_init, TcssModel};
use tcss_serve::snapshot::{
    snapshot_bytes, write_snapshot, SnapshotModel, FORMAT_VERSION, HEADER_LEN,
};
use tcss_serve::{QuantMode, SnapError};

fn model(seed: u64) -> TcssModel {
    let (u1, u2, u3) = random_init((6, 19, 5), 5, seed);
    let mut m = TcssModel::new(u1, u2, u3);
    m.h = (0..5).map(|t| 0.8 + 0.07 * t as f64).collect();
    m
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tcss-snapfmt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_raw(dir: &Path, bytes: &[u8]) -> PathBuf {
    let path = dir.join("candidate.tcsssnap");
    std::fs::write(&path, bytes).unwrap();
    path
}

/// FNV-1a 64, restated from the documented format (independent of the
/// implementation under test).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Re-stamp the header digest after deliberately editing a header field,
/// so the targeted-corruption tests exercise the *semantic* validation
/// behind the checksum, not the checksum itself.
fn restamp_header(bytes: &mut [u8]) {
    bytes[64..72].fill(0);
    let sum = fnv1a64(&bytes[..HEADER_LEN]);
    bytes[64..72].copy_from_slice(&sum.to_le_bytes());
}

fn mode_of(flag: bool) -> QuantMode {
    if flag {
        QuantMode::I16
    } else {
        QuantMode::F32
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any proper-prefix truncation is a typed `Truncated` under both
    /// open paths.
    #[test]
    fn every_truncation_point_is_rejected(
        (mode_sel, frac) in (0usize..2, 0.0f64..1.0)
    ) {
        let dir = tmpdir("trunc");
        let full = snapshot_bytes(&model(17), mode_of(mode_sel == 1));
        let cut = ((full.len() as f64 * frac) as usize).min(full.len() - 1);
        let path = write_raw(&dir, &full[..cut]);
        prop_assert!(matches!(
            SnapshotModel::open(&path),
            Err(SnapError::Truncated { .. })
        ));
        prop_assert!(matches!(
            SnapshotModel::open_fast(&path),
            Err(SnapError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single-bit flip anywhere in the file fails the full-verify
    /// open with a typed error; header flips also fail `open_fast`, and
    /// payload flips are `open_fast`'s *documented* blind spot — pinned
    /// here so the contract can't silently drift.
    #[test]
    fn every_bit_flip_is_rejected_by_full_open(
        (mode_sel, frac, bit) in (0usize..2, 0.0f64..1.0, 0usize..8)
    ) {
        let dir = tmpdir("flip");
        let mut bytes = snapshot_bytes(&model(29), mode_of(mode_sel == 1));
        let idx = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        let path = write_raw(&dir, &bytes);
        prop_assert!(SnapshotModel::open(&path).is_err(), "flip at byte {idx} bit {bit}");
        if idx < HEADER_LEN {
            prop_assert!(
                SnapshotModel::open_fast(&path).is_err(),
                "header flip at byte {idx} must fail open_fast"
            );
        } else {
            prop_assert!(
                SnapshotModel::open_fast(&path).is_ok(),
                "payload flip at byte {idx} is open_fast's documented blind spot"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn clean_roundtrip_loads_under_both_opens() {
    let dir = tmpdir("clean");
    let m = model(5);
    for (tag, mode) in [("f", QuantMode::F32), ("q", QuantMode::I16)] {
        let path = dir.join(format!("{tag}.tcsssnap"));
        write_snapshot(&m, mode, &path).expect("write");
        for snap in [
            SnapshotModel::open(&path).expect("open"),
            SnapshotModel::open_fast(&path).expect("open_fast"),
        ] {
            assert_eq!(snap.dims(), m.dims());
            assert_eq!(snap.rank(), m.rank());
            assert_eq!(snap.mode(), mode);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn appended_garbage_is_rejected() {
    let dir = tmpdir("append");
    let mut bytes = snapshot_bytes(&model(7), QuantMode::F32);
    bytes.extend_from_slice(&[0xAB; 17]);
    let path = write_raw(&dir, &bytes);
    assert!(matches!(
        SnapshotModel::open(&path),
        Err(SnapError::Truncated { .. })
    ));
    assert!(matches!(
        SnapshotModel::open_fast(&path),
        Err(SnapError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_skew_is_typed_even_with_valid_digest() {
    let dir = tmpdir("ver");
    let mut bytes = snapshot_bytes(&model(11), QuantMode::F32);
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    restamp_header(&mut bytes);
    let path = write_raw(&dir, &bytes);
    assert!(matches!(
        SnapshotModel::open(&path),
        Err(SnapError::UnsupportedVersion { found }) if found == FORMAT_VERSION + 1
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_quant_mode_is_typed_even_with_valid_digest() {
    let dir = tmpdir("mode");
    let mut bytes = snapshot_bytes(&model(13), QuantMode::F32);
    bytes[12..16].copy_from_slice(&7u32.to_le_bytes());
    restamp_header(&mut bytes);
    let path = write_raw(&dir, &bytes);
    assert!(matches!(
        SnapshotModel::open(&path),
        Err(SnapError::BadQuantMode { code: 7 })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inconsistent_dims_are_typed_even_with_valid_digest() {
    let dir = tmpdir("dims");
    let mut bytes = snapshot_bytes(&model(19), QuantMode::I16);
    // Claim one more user than the payload was laid out for.
    let users = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    bytes[16..24].copy_from_slice(&(users + 1).to_le_bytes());
    restamp_header(&mut bytes);
    let path = write_raw(&dir, &bytes);
    assert!(matches!(
        SnapshotModel::open(&path),
        Err(SnapError::DimsMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn not_a_snapshot_file_is_bad_magic() {
    let dir = tmpdir("notsnap");
    let path = write_raw(&dir, &vec![b'x'; HEADER_LEN + 128]);
    assert!(matches!(
        SnapshotModel::open(&path),
        Err(SnapError::BadMagic { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}
