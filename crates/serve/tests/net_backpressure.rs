//! Backpressure suite: admission-control shedding is deterministic.
//!
//! The server admits at most `queue_depth` in-flight recommendations;
//! beyond that it answers `Overloaded { queue_depth }` immediately — a
//! typed rejection, never a timeout or a dropped connection. The test
//! makes that deterministic (not load-dependent) by grabbing every
//! admission permit directly through [`ServerHandle::admission`], so the
//! server is *provably* full while the probe requests are in flight.
//! After the permits drop, the queue must drain and subsequent requests
//! must succeed with bitwise-correct rankings.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tcss_core::{random_init, TcssModel};
use tcss_serve::net::{NetClient, NetServer, ResponseBody, ServerConfig};
use tcss_serve::ServingEngine;

const DIMS: (usize, usize, usize) = (5, 29, 3);
const RANK: usize = 3;
const QUEUE_DEPTH: usize = 4;
const SHED_PROBES: usize = 6;

fn fixture_model() -> TcssModel {
    let (u1, u2, u3) = random_init(DIMS, RANK, 424242);
    TcssModel::new(u1, u2, u3)
}

#[test]
fn full_queue_sheds_typed_overloaded_then_drains_and_recovers() {
    let model = fixture_model();
    let engine = Arc::new(ServingEngine::new(fixture_model()));
    let handle = NetServer::start(
        engine,
        ServerConfig {
            workers: 2,
            queue_depth: QUEUE_DEPTH,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let gate = handle.admission();
    assert_eq!(gate.capacity(), QUEUE_DEPTH);

    // Occupy every permit so the server cannot admit anything.
    let held: Vec<_> = (0..QUEUE_DEPTH)
        .map(|_| gate.try_acquire().expect("permit available"))
        .collect();
    assert!(gate.try_acquire().is_none(), "gate is full");
    assert_eq!(gate.in_flight(), QUEUE_DEPTH);

    // --- shed phase ------------------------------------------------------
    // Pipeline several requests into the full server. Each must come back
    // as a *typed* Overloaded carrying the configured depth — quickly,
    // not by exhausting a timeout.
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    let ids: Vec<u64> = (0..SHED_PROBES)
        .map(|i| {
            client
                .send_recommend((i % DIMS.0) as u64, (i % DIMS.2) as u64, 5)
                .expect("send")
        })
        .collect();
    let shed_started = Instant::now();
    for id in &ids {
        let resp = client.read_response_for(*id).expect("typed shed response");
        match resp.body {
            ResponseBody::Overloaded { queue_depth } => {
                assert_eq!(queue_depth as usize, QUEUE_DEPTH)
            }
            other => panic!("expected Overloaded for id {id}, got {other:?}"),
        }
    }
    assert!(
        shed_started.elapsed() < Duration::from_secs(5),
        "shedding must be immediate, not timeout-driven"
    );

    // Ping still answers while the queue is full: liveness is not gated.
    client.ping().expect("ping bypasses admission");

    // --- drain phase -----------------------------------------------------
    drop(held);
    let drained = Instant::now();
    while handle.admission().in_flight() != 0 {
        assert!(
            drained.elapsed() < Duration::from_secs(5),
            "queue failed to drain after permits dropped"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // --- recovery phase --------------------------------------------------
    // Subsequent requests are admitted and answered bitwise-correctly.
    for user in 0..DIMS.0 {
        for time in 0..DIMS.2 {
            let resp = client
                .recommend(user as u64, time as u64, 5)
                .expect("post-drain request");
            match &resp.body {
                ResponseBody::Ranking { items, .. } => {
                    let want = model.recommend(user, time, 5);
                    assert_eq!(items.len(), want.len());
                    for ((gp, gs), (wp, ws)) in items.iter().zip(&want) {
                        assert_eq!(*gp, *wp as u64);
                        assert_eq!(gs.to_bits(), ws.to_bits(), "post-drain bitwise parity");
                    }
                }
                other => panic!("expected ranking after drain, got {other:?}"),
            }
        }
    }

    let m = handle.metrics();
    assert_eq!(m.overloaded, SHED_PROBES as u64, "every probe was shed");
    assert_eq!(
        m.ok,
        (DIMS.0 * DIMS.2) as u64,
        "every post-drain request succeeded"
    );
    assert_eq!(m.errors, 0);
    assert_eq!(m.protocol_errors, 0);
    assert_eq!(handle.admission().in_flight(), 0, "no leaked permits");
}

#[test]
fn shedding_under_real_overload_recovers_without_timeouts() {
    // A non-deterministic companion: genuinely oversubscribe a depth-1
    // server from several pipelining clients. We cannot predict *which*
    // requests shed, but every response must be either a correct Ranking
    // or a typed Overloaded — and afterwards the server must be healthy.
    let model = fixture_model();
    let engine = Arc::new(ServingEngine::new(fixture_model()));
    let handle = NetServer::start(
        engine,
        ServerConfig {
            workers: 2,
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let model = Arc::new(model);
    let threads: Vec<_> = (0..3)
        .map(|c| {
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut ids = Vec::new();
                for i in 0..80usize {
                    let user = (c + i) % DIMS.0;
                    let time = i % DIMS.2;
                    let id = client
                        .send_recommend(user as u64, time as u64, 4)
                        .expect("send");
                    ids.push((id, user, time));
                }
                let (mut ok, mut shed) = (0u64, 0u64);
                for (id, user, time) in ids {
                    let resp = client.read_response_for(id).expect("typed response");
                    match &resp.body {
                        ResponseBody::Ranking { items, .. } => {
                            let want = model.recommend(user, time, 4);
                            for ((gp, gs), (wp, ws)) in items.iter().zip(&want) {
                                assert_eq!(*gp, *wp as u64);
                                assert_eq!(gs.to_bits(), ws.to_bits());
                            }
                            ok += 1;
                        }
                        ResponseBody::Overloaded { queue_depth } => {
                            assert_eq!(*queue_depth, 1);
                            shed += 1;
                        }
                        other => panic!("unexpected body under overload: {other:?}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();

    let mut total_ok = 0;
    let mut total_shed = 0;
    for t in threads {
        let (ok, shed) = t.join().expect("client thread");
        total_ok += ok;
        total_shed += shed;
    }
    assert_eq!(
        total_ok + total_shed,
        240,
        "every request answered exactly once"
    );
    assert!(total_ok > 0, "some requests must get through");

    // Health check after the storm.
    let mut client = NetClient::connect(addr).expect("connect");
    client.ping().expect("server healthy after overload");
    let m = handle.metrics();
    assert_eq!(m.ok, total_ok);
    assert_eq!(m.overloaded, total_shed);
    assert_eq!(handle.admission().in_flight(), 0, "no leaked permits");
}
