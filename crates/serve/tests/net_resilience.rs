//! Resilience suite for the wire front end: deadlines, the idle reaper,
//! panic isolation, graceful drain and the client retry loop.
//!
//! Every scenario pins the same contract the protocol suite does — a
//! request resolves to a **typed** error or a response **bitwise**
//! identical to in-process `recommend` on the same snapshot — and adds
//! the failure-model guarantees of DESIGN.md §5g:
//!
//! * a request that waits past the configured deadline is answered
//!   `DeadlineExceeded` and never scored;
//! * a peer stalled mid-frame is reaped by the idle timeout, and the
//!   server keeps serving everyone else;
//! * a panic injected mid-batch answers typed `Internal` errors and the
//!   same connection keeps working;
//! * drain under active load flushes every built response — clients see
//!   bitwise-correct answers or a clean EOF, never a torn frame;
//! * an implicit `Drop` of the handle gives the same flush guarantee;
//! * the client retry loop survives `Overloaded` storms and reaped
//!   connections with deterministic capped backoff, and its per-call
//!   deadline expires typed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tcss_core::{random_init, TcssModel};
use tcss_serve::net::{
    ClientConfig, ClientError, ErrorCode, NetClient, NetServer, ResponseBody, ServerConfig,
};
use tcss_serve::ServingEngine;

const DIMS: (usize, usize, usize) = (6, 41, 4);
const RANK: usize = 3;
const TOP_N: u32 = 7;

fn model() -> TcssModel {
    let (u1, u2, u3) = random_init(DIMS, RANK, 4242);
    TcssModel::new(u1, u2, u3)
}

/// Expected `(poi, score_bits)` list for `(user, time)` on the fixture
/// model (version 1 — these suites never swap).
fn expected(model: &TcssModel, user: usize, time: usize) -> Vec<(u64, u64)> {
    model
        .recommend(user, time, TOP_N as usize)
        .into_iter()
        .map(|(poi, score)| (poi as u64, score.to_bits()))
        .collect()
}

fn assert_bitwise(resp: &tcss_serve::net::Response, model: &TcssModel, user: usize, time: usize) {
    match &resp.body {
        ResponseBody::Ranking { items, .. } => {
            let want = expected(model, user, time);
            assert_eq!(items.len(), want.len(), "({user},{time}): length");
            for (i, ((gp, gs), (wp, ws))) in items.iter().zip(&want).enumerate() {
                assert_eq!(gp, wp, "({user},{time}) rank {i}: poi");
                assert_eq!(gs.to_bits(), *ws, "({user},{time}) rank {i}: score bits");
            }
        }
        other => panic!("expected ranking for ({user},{time}), got {other:?}"),
    }
}

/// Poll `cond` against the live metrics until it holds or ~5 s pass.
fn wait_for(
    handle: &tcss_serve::net::ServerHandle,
    cond: impl Fn(&tcss_serve::net::NetMetrics) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if cond(&handle.metrics()) {
            return;
        }
        assert!(Instant::now() < deadline, "condition not reached in 5 s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn zero_deadline_answers_typed_deadline_exceeded_and_never_scores() {
    let engine = Arc::new(ServingEngine::new(model()));
    let handle = NetServer::start(
        Arc::clone(&engine),
        ServerConfig {
            // Zero deadline: every request has waited "too long" by the
            // time it reaches batch entry — deterministic full miss.
            request_deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let mut client = NetClient::connect(handle.addr()).expect("connect");
    for r in 0..3u64 {
        let resp = client.recommend(r % 6, r % 4, TOP_N).expect("answered");
        match &resp.body {
            ResponseBody::Error { code, .. } => {
                assert_eq!(*code, ErrorCode::DeadlineExceeded, "request {r}")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    let m = handle.metrics();
    assert_eq!(m.requests, 3);
    assert_eq!(m.deadline_exceeded, 3, "every request expired");
    assert_eq!(m.errors, 3, "deadline misses are typed error responses");
    assert_eq!(m.ok, 0, "an expired request is never scored");
    assert_eq!(m.queue_wait_ns.count, 3, "queue wait recorded per request");
    assert_eq!(
        engine.requests_entered(),
        0,
        "expired requests never reach the engine"
    );
}

#[test]
fn idle_reaper_closes_a_client_stalled_mid_frame() {
    let m = model();
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(80)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    // The stalled peer: half a frame header + body prefix, then silence.
    let mut stalled = NetClient::connect(handle.addr()).expect("connect");
    stalled
        .send_raw(&[0x10, 0x00, 0x00, 0x00, 0x01, 0x02])
        .expect("half frame");
    wait_for(&handle, |m| m.reaped_idle >= 1);

    // The reaped socket is closed server-side without an answer (there
    // was no complete request to answer): the stalled client observes a
    // connection close, not a hang and not a torn frame.
    match stalled.read_response() {
        Err(ClientError::ServerClosed | ClientError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }

    // The server keeps serving fresh connections correctly.
    let mut fresh = NetClient::connect(handle.addr()).expect("connect");
    let resp = fresh.recommend(2, 1, TOP_N).expect("served after reap");
    assert_bitwise(&resp, &m, 2, 1);

    let metrics = handle.metrics();
    assert_eq!(metrics.reaped_idle, 1);
    assert_eq!(metrics.protocol_errors, 0, "a reap is not a protocol error");
}

#[test]
fn injected_panic_mid_batch_is_isolated_and_the_connection_survives() {
    let m = model();
    let engine = Arc::new(ServingEngine::new(model()));
    let handle = NetServer::start(Arc::clone(&engine), ServerConfig::default()).expect("bind");

    let mut client = NetClient::connect(handle.addr()).expect("connect");

    // Warm-up traffic, verified bitwise.
    for (user, time) in [(0usize, 0usize), (3, 2)] {
        let resp = client
            .recommend(user as u64, time as u64, TOP_N)
            .expect("warmup");
        assert_bitwise(&resp, &m, user, time);
    }

    // Arm: the batch containing the next request entered panics once.
    engine.inject_panic_at_request(engine.requests_entered());
    let id_panicked = {
        let resp = client
            .recommend(1, 1, TOP_N)
            .expect("typed answer, not a hang");
        match &resp.body {
            ResponseBody::Error { code, .. } => assert_eq!(*code, ErrorCode::Internal),
            other => panic!("expected Internal error, got {other:?}"),
        }
        resp.id
    };
    assert!(id_panicked > 0);

    // Same connection, same request: the trigger was consumed, the
    // worker survived, the answer is bitwise-correct.
    let resp = client.recommend(1, 1, TOP_N).expect("post-panic request");
    assert_bitwise(&resp, &m, 1, 1);

    let metrics = handle.metrics();
    assert_eq!(metrics.panics, 1, "exactly one batch panicked");
    assert_eq!(
        metrics.worker_restarts, 0,
        "batch panics are caught without restarting the worker"
    );
    assert_eq!(metrics.errors, 1, "the panicked request answered typed");
    assert_eq!(metrics.ok, 3, "all other requests scored normally");
}

#[test]
fn drain_under_load_answers_or_closes_cleanly_never_torn() {
    let m = Arc::new(model());
    let mut handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let clients: Vec<std::thread::JoinHandle<u64>> = (0..3)
        .map(|c: usize| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let mut client = NetClient::connect_with_timeout(addr, Duration::from_secs(10))
                    .expect("connect");
                let mut answered = 0u64;
                loop {
                    let user = (c + answered as usize) % DIMS.0;
                    let time = answered as usize % DIMS.2;
                    match client.recommend(user as u64, time as u64, TOP_N) {
                        Ok(resp) => {
                            assert_bitwise(&resp, &m, user, time);
                            answered += 1;
                        }
                        // The drain contract: after the flushed FIN the
                        // client sees a clean EOF at a frame boundary —
                        // a Frame(TruncatedEof) here would be a torn
                        // response and fails the test.
                        Err(ClientError::ServerClosed) => return answered,
                        Err(e) => panic!("client {c}: unexpected failure {e}"),
                    }
                }
            })
        })
        .collect();

    // Let the load run, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(60));
    let t0 = Instant::now();
    let clean = handle.drain(Duration::from_secs(5));
    let drain_elapsed = t0.elapsed();
    assert!(clean, "drain completed without force-closing");
    assert!(
        drain_elapsed < Duration::from_secs(5),
        "drain exited within its timeout"
    );

    let answered: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .sum();
    assert!(answered > 0, "load actually overlapped the drain");

    let metrics = handle.metrics();
    assert_eq!(
        metrics.ok, metrics.requests,
        "every accepted in-flight request was answered before close"
    );
    assert_eq!(metrics.overloaded, 0);
    assert_eq!(metrics.errors, 0);
    assert_eq!(metrics.accepted, metrics.closed, "no leaked connections");
}

#[test]
fn implicit_drop_flushes_every_queued_response() {
    const PIPELINED: usize = 64;
    let m = model();
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig::default(),
    )
    .expect("bind loopback");

    let mut client = NetClient::connect(handle.addr()).expect("connect");
    let mut sent: Vec<(u64, usize, usize)> = Vec::new();
    for r in 0..PIPELINED {
        let (user, time) = (r % DIMS.0, r % DIMS.2);
        let id = client
            .send_recommend(user as u64, time as u64, TOP_N)
            .expect("pipelined send");
        sent.push((id, user, time));
    }
    // Wait until the server has built all the responses, then drop the
    // handle without reading any of them — the satellite-1 scenario.
    wait_for(&handle, |metrics| metrics.ok >= PIPELINED as u64);
    drop(handle);

    // Every queued response must arrive complete and bitwise-correct,
    // followed by a clean EOF.
    for &(id, user, time) in &sent {
        let resp = client.read_response_for(id).expect("flushed before close");
        assert_bitwise(&resp, &m, user, time);
    }
    match client.read_response() {
        Err(ClientError::ServerClosed) => {}
        other => panic!("expected clean EOF after the flush, got {other:?}"),
    }
}

#[test]
fn client_backoff_retries_overload_until_capacity_frees() {
    let m = model();
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    // Occupy the whole admission queue so every request sheds.
    let gate = handle.admission();
    let blocker = gate.try_acquire().expect("queue empty at start");

    let addr = handle.addr();
    let worker = std::thread::spawn(move || {
        let mut client = NetClient::connect_with_config(
            addr,
            ClientConfig {
                retries: 20,
                backoff_base: Duration::from_millis(10),
                backoff_cap: Duration::from_millis(40),
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        let resp = client
            .recommend_with_retry(4, 3, TOP_N)
            .expect("succeeds once capacity frees");
        (resp, client.stats())
    });

    // Hold the permit long enough to force at least one shed, then free.
    std::thread::sleep(Duration::from_millis(120));
    drop(blocker);

    let (resp, stats) = worker.join().expect("client thread");
    assert_bitwise(&resp, &m, 4, 3);
    assert!(stats.retries >= 1, "the overload actually forced retries");
    assert_eq!(stats.reconnects, 0, "overload retries reuse the connection");
    assert!(handle.metrics().overloaded >= 1);
}

#[test]
fn client_call_deadline_expires_typed_under_persistent_overload() {
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let gate = handle.admission();
    let _blocker = gate.try_acquire().expect("queue empty at start");

    let mut client = NetClient::connect_with_config(
        handle.addr(),
        ClientConfig {
            retries: 1000,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
            call_deadline: Some(Duration::from_millis(250)),
            ..ClientConfig::default()
        },
    )
    .expect("connect");

    let t0 = Instant::now();
    match client.recommend_with_retry(0, 0, TOP_N) {
        Err(ClientError::DeadlineExceeded { .. }) => {}
        other => panic!("expected typed call-deadline expiry, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "the deadline bounded the retry loop"
    );
}

#[test]
fn client_reconnects_after_its_connection_is_reaped() {
    let m = model();
    let handle = NetServer::start(
        Arc::new(ServingEngine::new(model())),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(60)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let mut client = NetClient::connect_with_config(
        handle.addr(),
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    client.ping().expect("connection established");

    // Go idle past the server's timeout; the server reaps us.
    wait_for(&handle, |metrics| metrics.reaped_idle >= 1);

    // The retry loop notices the dead transport, reconnects, succeeds.
    let resp = client
        .recommend_with_retry(5, 2, TOP_N)
        .expect("served after reconnect");
    assert_bitwise(&resp, &m, 5, 2);
    assert_eq!(client.stats().reconnects, 1, "exactly one reconnect");
}

#[test]
fn maintenance_tick_reaps_stale_cache_entries_after_a_swap() {
    let m = model();
    let engine = Arc::new(ServingEngine::new(m.clone()));
    let mut handle = NetServer::start(
        Arc::clone(&engine),
        ServerConfig {
            // Tight tick so the test observes a reap without waiting out
            // the production default.
            maintenance_interval: Some(Duration::from_millis(20)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    // Populate both caches, then swap: the old-version entries become
    // unreachable and wait for the maintenance tick to reclaim them.
    let mut client = NetClient::connect(handle.addr()).expect("connect");
    for r in 0..4u64 {
        let resp = client.recommend(r % 6, r % 4, TOP_N).expect("served");
        assert_bitwise(&resp, &m, (r % 6) as usize, (r % 4) as usize);
    }
    engine.swap_model(model());

    // The tick runs on its own thread — no request traffic after the
    // swap, so any reap observed here came from the maintenance loop.
    let deadline = Instant::now() + Duration::from_secs(5);
    while engine.metrics().reaped_stale == 0 {
        assert!(
            Instant::now() < deadline,
            "maintenance tick never reaped the stale entries"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.weight_stale, 0, "stale weight entries remain");
    assert_eq!(stats.topn_stale, 0, "stale top-n entries remain");

    drop(client);
    assert!(handle.drain(Duration::from_secs(1)), "drain timed out");
}
