//! Chaos/soak suite: sustained loopback load across concurrent model
//! swaps.
//!
//! The `ModelHandle` pin contract says a swap never tears a batch: every
//! response is produced entirely on the snapshot it pinned and stamped
//! with that snapshot's version. This suite drives continuous wire
//! traffic from several client threads while the main thread publishes
//! several new models, and asserts:
//!
//! 1. **No torn responses.** Every `Ranking` received matches, item for
//!    item and bit for bit, the recommendation list precomputed from the
//!    model published under the version the response claims. A response
//!    mixing two models' factors cannot pass, because it would match
//!    neither version's expected list exactly.
//! 2. **No stale cache service after a swap.** Once the final swap is
//!    known to have been observed, re-querying every key the load used
//!    (now cache-resident from older versions) must yield the final
//!    version's answers exactly — version-keyed caches cannot serve a
//!    superseded entry.
//! 3. **The soak is lossless.** Every request gets exactly one response
//!    (no drops, no duplicates, no `Overloaded` with the deep queue used
//!    here) within the client read timeout — a hung server fails fast.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use tcss_core::{random_init, TcssModel};
use tcss_serve::net::{NetClient, NetServer, ResponseBody, ServerConfig};
use tcss_serve::ServingEngine;

const DIMS: (usize, usize, usize) = (6, 41, 4);
const RANK: usize = 3;
const TOP_N: u32 = 7;
const SWAPS: usize = 4;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 240;

fn model_for_version(version: u64) -> TcssModel {
    // Distinct seed per version ⇒ distinct factors ⇒ distinct rankings;
    // a torn mix of two versions cannot equal either's expected list.
    let (u1, u2, u3) = random_init(DIMS, RANK, 1000 + version);
    TcssModel::new(u1, u2, u3)
}

type Expected = HashMap<(u64, usize, usize), Vec<(u64, u64)>>;

/// `(version, user, time)` → expected `(poi, score_bits)` list.
fn expected_tables(versions: u64) -> Expected {
    let mut out = HashMap::new();
    for v in 1..=versions {
        let model = model_for_version(v);
        for user in 0..DIMS.0 {
            for time in 0..DIMS.2 {
                let want: Vec<(u64, u64)> = model
                    .recommend(user, time, TOP_N as usize)
                    .into_iter()
                    .map(|(poi, score)| (poi as u64, score.to_bits()))
                    .collect();
                out.insert((v, user, time), want);
            }
        }
    }
    out
}

fn check_ranking(expected: &Expected, resp: &tcss_serve::net::Response, user: usize, time: usize) {
    match &resp.body {
        ResponseBody::Ranking { version, items } => {
            let want = expected
                .get(&(*version, user, time))
                .unwrap_or_else(|| panic!("response claims unpublished version {version}"));
            assert_eq!(
                items.len(),
                want.len(),
                "v{version} ({user},{time}): length mismatch"
            );
            for (i, ((gp, gs), (wp, ws))) in items.iter().zip(want).enumerate() {
                assert_eq!(gp, wp, "v{version} ({user},{time}) rank {i}: poi");
                assert_eq!(
                    gs.to_bits(),
                    *ws,
                    "v{version} ({user},{time}) rank {i}: torn or stale score"
                );
            }
        }
        other => panic!("expected ranking for ({user},{time}), got {other:?}"),
    }
}

#[test]
fn soak_under_concurrent_swaps_is_torn_free_and_stale_free() {
    let final_version = 1 + SWAPS as u64;
    let expected = Arc::new(expected_tables(final_version));

    let engine = Arc::new(ServingEngine::new(model_for_version(1)));
    let handle = NetServer::start(
        engine,
        ServerConfig {
            workers: 2,
            queue_depth: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let clients: Vec<std::thread::JoinHandle<(u64, u64)>> = (0..CLIENTS)
        .map(|c| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = NetClient::connect_with_timeout(addr, Duration::from_secs(20))
                    .expect("connect");
                let mut versions_seen = (u64::MAX, 0u64); // (min, max)
                for r in 0..REQUESTS_PER_CLIENT {
                    let user = (c + 3 * r) % DIMS.0;
                    let time = (c + r) % DIMS.2;
                    let resp = client
                        .recommend(user as u64, time as u64, TOP_N)
                        .expect("every request answered within the timeout");
                    check_ranking(&expected, &resp, user, time);
                    if let ResponseBody::Ranking { version, .. } = resp.body {
                        versions_seen.0 = versions_seen.0.min(version);
                        versions_seen.1 = versions_seen.1.max(version);
                    }
                }
                versions_seen
            })
        })
        .collect();

    // Publish SWAPS new models while the soak runs.
    for v in 2..=final_version {
        std::thread::sleep(Duration::from_millis(40));
        let published = handle.engine().swap_model(model_for_version(v));
        assert_eq!(published, v, "swap publishes monotone versions");
    }

    let mut min_seen = u64::MAX;
    let mut max_seen = 0;
    for client in clients {
        let (lo, hi) = client.join().expect("client thread");
        min_seen = min_seen.min(lo);
        max_seen = max_seen.max(hi);
    }
    assert!(
        min_seen >= 1 && max_seen <= final_version,
        "versions outside the published range: [{min_seen}, {max_seen}]"
    );

    // --- stale-cache assertion -------------------------------------------
    // Every (user, time) key the soak used is now cache-resident under
    // some mix of versions. After the final swap, every answer must be
    // the final version's — exactly.
    let mut client =
        NetClient::connect_with_timeout(addr, Duration::from_secs(20)).expect("connect");
    for user in 0..DIMS.0 {
        for time in 0..DIMS.2 {
            let resp = client
                .recommend(user as u64, time as u64, TOP_N)
                .expect("post-swap request");
            match &resp.body {
                ResponseBody::Ranking { version, .. } => assert_eq!(
                    *version, final_version,
                    "post-swap response served from a stale snapshot"
                ),
                other => panic!("expected ranking, got {other:?}"),
            }
            check_ranking(&expected, &resp, user, time);
        }
    }

    // The soak was lossless: every request produced exactly one OK.
    let m = handle.metrics();
    let total = (CLIENTS * REQUESTS_PER_CLIENT + DIMS.0 * DIMS.2) as u64;
    assert_eq!(m.requests, total, "request count");
    assert_eq!(m.ok, total, "every request answered with a ranking");
    assert_eq!(m.overloaded, 0, "deep queue never sheds in this soak");
    assert_eq!(m.errors, 0);
    assert_eq!(m.protocol_errors, 0);

    // Engine-level cross-check: after a purge, no stale entries remain.
    let engine = handle.engine();
    engine.purge_stale();
    let stats = engine.cache_stats();
    assert_eq!(stats.weight_stale, 0);
    assert_eq!(stats.topn_stale, 0);
}
