//! Wire-protocol property and robustness suite.
//!
//! Pins the protocol contracts of `tcss_serve::net`:
//!
//! 1. **Framing survives arbitrary fragmentation.** Any frame stream
//!    delivered in any byte-boundary split (one byte at a time, headers
//!    torn across reads, many frames in one read) decodes to exactly the
//!    original payload sequence.
//! 2. **Messages round-trip bitwise.** Requests and responses (scores
//!    included, via `f64::to_bits`) survive encode→frame→split→decode
//!    unchanged.
//! 3. **Hostile input yields typed errors, never a panic or a hang.**
//!    Malformed, truncated, oversized and trailing-garbage inputs are
//!    property-tested at the codec layer and exercised end-to-end over a
//!    live loopback server, where each must produce a typed `Error`
//!    response (and close the connection for framing-level corruption)
//!    within the client's read timeout.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use tcss_core::{random_init, TcssModel};
use tcss_serve::net::frame::{encode_frame, FrameDecoder, FrameError};
use tcss_serve::net::proto::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request,
    RequestBody, Response, ResponseBody,
};
use tcss_serve::net::{NetClient, NetServer, ServerConfig};
use tcss_serve::ServingEngine;

// ---------------------------------------------------------------------------
// Codec properties.

/// Split `stream` into chunks at the (wrapped) cut offsets in `cuts`.
fn split_at(stream: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|&c| {
            if stream.is_empty() {
                0
            } else {
                c % stream.len()
            }
        })
        .collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| stream[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frames round-trip under arbitrary byte-boundary splits.
    #[test]
    fn frames_roundtrip_under_arbitrary_splits(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..48), 0..8),
        cuts in proptest::collection::vec(0usize..4096, 0..24),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut dec = FrameDecoder::new(1 << 12);
        let mut got: Vec<Vec<u8>> = Vec::new();
        for chunk in split_at(&stream, &cuts) {
            dec.push(&chunk);
            while let Some(frame) = dec.next_frame().expect("well-formed stream") {
                got.push(frame);
            }
        }
        dec.finish().expect("stream ends on a frame boundary");
        prop_assert_eq!(got, payloads);
    }

    /// Requests and responses round-trip bitwise through the codec,
    /// regardless of how the framed bytes are fragmented.
    #[test]
    fn messages_roundtrip_bitwise(
        (id, user, time, n) in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u32..=u32::MAX),
        version in 0u64..=u64::MAX,
        item_bits in proptest::collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..12),
        cuts in proptest::collection::vec(0usize..256, 0..6),
    ) {
        let req = Request { id, body: RequestBody::Recommend { user, time, n } };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);

        let items: Vec<(u64, f64)> = item_bits
            .iter()
            .map(|&(poi, bits)| (poi, f64::from_bits(bits)))
            .collect();
        let resp = Response { id, body: ResponseBody::Ranking { version, items } };
        let wire = encode_frame(&encode_response(&resp));
        let mut dec = FrameDecoder::new(1 << 16);
        for chunk in split_at(&wire, &cuts) {
            dec.push(&chunk);
        }
        let payload = dec.next_frame().unwrap().expect("one whole frame");
        let back = decode_response(&payload).unwrap();
        prop_assert_eq!(back.id, resp.id);
        match (back.body, resp.body) {
            (
                ResponseBody::Ranking { version: vb, items: ib },
                ResponseBody::Ranking { version: va, items: ia },
            ) => {
                prop_assert_eq!(vb, va);
                prop_assert_eq!(ib.len(), ia.len());
                for ((pb, sb), (pa, sa)) in ib.iter().zip(&ia) {
                    prop_assert_eq!(pb, pa);
                    prop_assert_eq!(sb.to_bits(), sa.to_bits());
                }
            }
            _ => unreachable!("both are rankings"),
        }
    }

    /// Arbitrary payload bytes never panic the message decoders — every
    /// outcome is `Ok` or a typed `WireError`.
    #[test]
    fn arbitrary_payloads_decode_to_typed_results(
        payload in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let _ = decode_request(&payload);
        let _ = decode_response(&payload);
    }

    /// A request with trailing garbage is always a typed `Trailing`.
    #[test]
    fn trailing_garbage_is_typed(
        (id, user, time, n) in (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX, 0u32..=u32::MAX),
        garbage in proptest::collection::vec(0u8..=255, 1..16),
    ) {
        let mut payload = encode_request(&Request {
            id,
            body: RequestBody::Recommend { user, time, n },
        });
        payload.extend_from_slice(&garbage);
        prop_assert!(matches!(
            decode_request(&payload),
            Err(tcss_serve::net::WireError::Trailing { kind: 1, .. })
        ));
    }

    /// A frame stream cut mid-frame is a typed truncation at EOF; cut on
    /// a boundary it finishes clean. Never a panic, never a silent drop.
    #[test]
    fn truncation_is_detected_at_eof(
        payload in proptest::collection::vec(0u8..=255, 0..32),
        cut in 0usize..=usize::MAX,
    ) {
        let wire = encode_frame(&payload);
        let keep = cut % (wire.len() + 1);
        let mut dec = FrameDecoder::new(1 << 12);
        dec.push(&wire[..keep]);
        let decoded = dec.next_frame().expect("no error before EOF");
        if keep == wire.len() {
            prop_assert_eq!(decoded, Some(payload));
            prop_assert!(dec.finish().is_ok());
        } else {
            prop_assert_eq!(decoded, None);
            if keep == 0 {
                prop_assert!(dec.finish().is_ok(), "nothing buffered is clean");
            } else {
                prop_assert!(matches!(
                    dec.finish(),
                    Err(FrameError::TruncatedEof { buffered }) if buffered == keep
                ));
            }
        }
    }

    /// Any header whose declared length exceeds the cap errors before
    /// buffering a single payload byte, and the decoder stays poisoned.
    #[test]
    fn oversized_headers_error_eagerly(
        declared in 65u32..=u32::MAX,
        tail in proptest::collection::vec(0u8..=255, 0..16),
    ) {
        let mut dec = FrameDecoder::new(64);
        let mut wire = declared.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        dec.push(&wire);
        prop_assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { declared: d, max: 64 }) if d == declared
        ));
        prop_assert!(dec.next_frame().is_err(), "poison sticks");
    }
}

// ---------------------------------------------------------------------------
// End-to-end robustness over a live loopback server.

fn live_server() -> (tcss_serve::net::ServerHandle, TcssModel) {
    let (u1, u2, u3) = random_init((5, 37, 4), 3, 99);
    let model = TcssModel::new(u1, u2, u3);
    let engine = Arc::new(ServingEngine::new(model.clone()));
    let handle = NetServer::start(engine, ServerConfig::default()).expect("bind loopback");
    (handle, model)
}

fn client(handle: &tcss_serve::net::ServerHandle) -> NetClient {
    NetClient::connect_with_timeout(handle.addr(), Duration::from_secs(10)).expect("connect")
}

#[test]
fn wire_answers_match_in_process_recommend_bitwise() {
    let (handle, model) = live_server();
    let mut c = client(&handle);
    for (user, time, n) in [(0u64, 0u64, 5u32), (4, 3, 10), (2, 1, 1), (3, 2, 37)] {
        let resp = c.recommend(user, time, n).expect("round trip");
        let want = model.recommend(user as usize, time as usize, n as usize);
        match resp.body {
            ResponseBody::Ranking { items, .. } => {
                assert_eq!(items.len(), want.len());
                for ((gp, gs), (wp, ws)) in items.iter().zip(&want) {
                    assert_eq!(*gp, *wp as u64);
                    assert_eq!(gs.to_bits(), ws.to_bits(), "wire score must be bitwise");
                }
            }
            other => panic!("expected ranking, got {other:?}"),
        }
    }
}

#[test]
fn out_of_range_requests_get_typed_error_responses() {
    let (handle, _model) = live_server();
    let mut c = client(&handle);
    let resp = c.recommend(999, 0, 5).expect("server answers");
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::UserOutOfRange,
            ..
        }
    ));
    let resp = c.recommend(0, 999, 5).expect("server answers");
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::TimeOutOfRange,
            ..
        }
    ));
    // The connection survives request-level errors.
    c.ping().expect("connection still healthy");
}

#[test]
fn malformed_message_gets_typed_error_and_connection_survives() {
    let (handle, model) = live_server();
    let mut c = client(&handle);
    // Valid frame, garbage payload (unknown kind 0xEE + salvageable id).
    let mut payload = vec![0xEEu8];
    payload.extend_from_slice(&7u64.to_le_bytes());
    c.send_raw(&encode_frame(&payload)).expect("send");
    let resp = c.read_response().expect("typed error response");
    assert_eq!(resp.id, 7, "id salvaged from the mangled request");
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));
    // Frame boundaries intact ⇒ the connection keeps serving.
    let resp = c.recommend(1, 1, 4).expect("post-error request");
    let want = model.recommend(1, 1, 4);
    match resp.body {
        ResponseBody::Ranking { items, .. } => assert_eq!(items.len(), want.len()),
        other => panic!("expected ranking, got {other:?}"),
    }
}

#[test]
fn oversized_frame_gets_typed_error_then_close() {
    let (handle, _model) = live_server();
    let mut c = client(&handle);
    // Header declaring 2 MiB (over the 1 MiB default cap); no payload needed.
    c.send_raw(&(2u32 << 20).to_le_bytes())
        .expect("send header");
    let resp = c.read_response().expect("typed error response");
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::FrameTooLarge,
            ..
        }
    ));
    // Framing corruption is connection-fatal: the server closes after
    // the error (and never hangs the client).
    assert!(matches!(
        c.read_response(),
        Err(tcss_serve::net::ClientError::ServerClosed)
    ));
}

#[test]
fn half_closed_partial_frame_gets_truncation_error() {
    let (handle, _model) = live_server();
    let mut c = client(&handle);
    let full = encode_frame(&encode_request(&Request {
        id: 3,
        body: RequestBody::Ping,
    }));
    c.send_raw(&full[..full.len() - 2]).expect("partial frame");
    c.shutdown_write().expect("half-close");
    let resp = c.read_response().expect("typed truncation response");
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::Truncated,
            ..
        }
    ));
    let m = {
        // Truncation is counted as a protocol error on the server.
        let mut tries = 0;
        loop {
            let m = handle.metrics();
            if m.protocol_errors >= 1 || tries > 100 {
                break m;
            }
            tries += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    assert!(m.protocol_errors >= 1);
}

#[test]
fn pipelined_requests_all_answered_in_order_ids() {
    let (handle, model) = live_server();
    let mut c = client(&handle);
    let ids: Vec<u64> = (0..32)
        .map(|i| c.send_recommend(i % 5, i % 4, 6).expect("pipelined send"))
        .collect();
    for (i, id) in ids.into_iter().enumerate() {
        let resp = c.read_response_for(id).expect("response for id");
        let want = model.recommend((i as u64 % 5) as usize, (i as u64 % 4) as usize, 6);
        match resp.body {
            ResponseBody::Ranking { items, .. } => {
                for ((gp, gs), (wp, ws)) in items.iter().zip(&want) {
                    assert_eq!(*gp, *wp as u64);
                    assert_eq!(gs.to_bits(), ws.to_bits());
                }
            }
            other => panic!("expected ranking, got {other:?}"),
        }
    }
}
