//! Histogram correctness and metrics race-freedom.
//!
//! 1. On synthetic distributions, the log-bucketed estimator's
//!    p50/p99/p999 land within one bucket of the exact (sorted-array)
//!    quantile — the error bound the bucket geometry promises.
//! 2. `snapshot_and_reset` is race-free under concurrent recorders:
//!    interleaved scrapes may split the stream arbitrarily, but merging
//!    every scrape conserves every recorded sample and the exact sum
//!    (nothing lost, nothing double-counted).
//! 3. The engine-level `take_metrics` obeys the same conservation law
//!    while live traffic hammers the serving path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tcss_core::{random_init, TcssModel};
use tcss_serve::hist::{bucket_index, bucket_range};
use tcss_serve::{HistogramSnapshot, LatencyHistogram, ScoreRequest, ServingEngine};

/// Exact quantile of a sorted sample, same convention as the histogram:
/// smallest value with rank ≥ ⌈q·count⌉.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Assert the estimate is within one bucket of the exact quantile: the
/// estimate's bucket must be the exact value's bucket or an adjacent one.
fn assert_within_one_bucket(estimate: u64, exact: u64, label: &str) {
    let be = bucket_index(estimate);
    let bx = bucket_index(exact);
    assert!(
        be.abs_diff(bx) <= 1,
        "{label}: estimate {estimate} (bucket {be}) vs exact {exact} (bucket {bx})"
    );
}

/// Deterministic xorshift so distributions are reproducible without a
/// seeded-RNG dependency in the test.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn check_distribution(samples: &[u64], label: &str) {
    let hist = LatencyHistogram::new();
    for &s in samples {
        hist.record(s);
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, samples.len() as u64);
    let exact_sum: u64 = samples.iter().sum();
    assert_eq!(snap.sum, exact_sum, "{label}: sum is exact, not bucketed");

    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for (q, est) in [(0.50, snap.p50()), (0.99, snap.p99()), (0.999, snap.p999())] {
        assert_within_one_bucket(est, exact_quantile(&sorted, q), &format!("{label} q={q}"));
    }
}

#[test]
fn quantiles_within_one_bucket_on_synthetic_distributions() {
    let mut rng = XorShift(0x9e3779b97f4a7c15);

    // Uniform over ~3 decades.
    let uniform: Vec<u64> = (0..20_000).map(|_| 1_000 + rng.next() % 999_000).collect();
    check_distribution(&uniform, "uniform");

    // Log-uniform: spread across bucket groups, stresses the geometry.
    let log_uniform: Vec<u64> = (0..20_000)
        .map(|_| {
            let exp = rng.next() % 20; // 2^0 ..= 2^19
            (1u64 << exp) + rng.next() % (1u64 << exp).max(1)
        })
        .collect();
    check_distribution(&log_uniform, "log-uniform");

    // Bimodal with a heavy tail: the p999 lives in the sparse mode.
    let bimodal: Vec<u64> = (0..20_000)
        .map(|i| {
            if i % 500 == 0 {
                10_000_000 + rng.next() % 5_000_000
            } else {
                5_000 + rng.next() % 2_000
            }
        })
        .collect();
    check_distribution(&bimodal, "bimodal");

    // Constant stream: every quantile is the constant's bucket edge.
    let constant = vec![123_456u64; 5_000];
    check_distribution(&constant, "constant");
    let (lo, hi) = bucket_range(bucket_index(123_456));
    let hist = LatencyHistogram::new();
    for &s in &constant {
        hist.record(s);
    }
    let p50 = hist.snapshot().p50();
    assert!((lo..=hi).contains(&p50), "constant p50 within its bucket");
}

#[test]
fn snapshot_and_reset_conserves_counts_under_concurrent_recorders() {
    const RECORDERS: usize = 4;
    const PER_RECORDER: u64 = 50_000;

    let hist = Arc::new(LatencyHistogram::new());
    let stop = Arc::new(AtomicBool::new(false));

    let recorders: Vec<std::thread::JoinHandle<u64>> = (0..RECORDERS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                let mut local_sum = 0u64;
                let mut rng = XorShift(0xabcd_ef01 + t as u64);
                for _ in 0..PER_RECORDER {
                    let v = 1 + rng.next() % 1_000_000;
                    hist.record(v);
                    local_sum += v;
                }
                local_sum
            })
        })
        .collect();

    // A scraper racing the recorders: repeated snapshot_and_reset.
    let scraper = {
        let hist = Arc::clone(&hist);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut merged = HistogramSnapshot::default();
            while !stop.load(Ordering::Acquire) {
                merged.merge(&hist.snapshot_and_reset());
                std::thread::yield_now();
            }
            merged
        })
    };

    let expected_sum: u64 = recorders.into_iter().map(|r| r.join().unwrap()).sum();
    stop.store(true, Ordering::Release);
    let mut merged = scraper.join().unwrap();

    // Drain whatever the final scrape missed, then check conservation.
    merged.merge(&hist.snapshot_and_reset());
    assert_eq!(
        merged.count,
        (RECORDERS as u64) * PER_RECORDER,
        "no sample lost or double-counted across racing scrapes"
    );
    assert_eq!(merged.sum, expected_sum, "sum conserved exactly");

    // The histogram is now fully drained.
    let empty = hist.snapshot();
    assert_eq!(empty.count, 0);
    assert_eq!(empty.sum, 0);
}

#[test]
fn engine_take_metrics_is_race_free_under_live_traffic() {
    const DIMS: (usize, usize, usize) = (4, 23, 3);
    let (u1, u2, u3) = random_init(DIMS, 3, 7);
    let engine = Arc::new(ServingEngine::new(TcssModel::new(u1, u2, u3)));

    const WORKERS: usize = 3;
    const ROUNDS: usize = 400;
    let workers: Vec<_> = (0..WORKERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    let req = ScoreRequest {
                        user: (t + i) % DIMS.0,
                        time: i % DIMS.2,
                    };
                    engine.recommend_batch(&[req], 5).unwrap();
                }
            })
        })
        .collect();

    // Scrape concurrently with the traffic; every take must hand out
    // each recorded sample exactly once, so summing the scrapes must
    // conserve the counters exactly — no loss, no double count.
    let mut requests = 0u64;
    let mut served = 0u64; // topn hits + misses
    let mut select = HistogramSnapshot::default();
    let mut scrape = |engine: &ServingEngine| {
        let (m, stages) = engine.take_metrics();
        requests += m.requests;
        served += m.topn_hits + m.topn_misses;
        select.merge(&stages.select);
    };
    for _ in 0..50 {
        scrape(&engine);
        std::thread::yield_now();
    }
    for w in workers {
        w.join().unwrap();
    }
    scrape(&engine);

    let total = (WORKERS * ROUNDS) as u64;
    assert_eq!(requests, total, "request counter conserved across scrapes");
    assert_eq!(served, total, "every request was a topn hit or miss");
    // Select-stage samples: one per batch that had ≥1 cache miss. With a
    // finite key space under concurrent load the exact split is racy, but
    // the cold misses guarantee at least one, takes never duplicate, and
    // each batch here holds one request so samples ≤ requests.
    assert!(select.count >= 1, "cold misses recorded select samples");
    assert!(select.count <= total, "select samples never double-counted");
    let bucket_mass: u64 = select.counts.iter().sum();
    assert_eq!(
        bucket_mass, select.count,
        "bucket mass matches sample count"
    );

    // After the final take, everything is drained.
    let (metrics, stages) = engine.take_metrics();
    assert_eq!(stages.select.count, 0);
    assert_eq!(metrics.requests, 0);
}
