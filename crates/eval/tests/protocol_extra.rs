//! Additional protocol tests: the evaluation must be fair, deterministic
//! and sensitive in the ways the paper's comparisons assume.

use tcss_data::{CheckIn, Granularity};
use tcss_eval::{evaluate_ranking, rmse_positive_negative, EvalConfig, RankingMetrics};

fn mk(user: usize, poi: usize, month: u8) -> CheckIn {
    CheckIn {
        user,
        poi,
        month,
        week: month * 4,
        hour: 12,
    }
}

fn run(
    test: &[CheckIn],
    n_pois: usize,
    score: impl Fn(usize, usize, usize) -> f64,
) -> RankingMetrics {
    evaluate_ranking(test, n_pois, &EvalConfig::default(), score)
}

#[test]
fn deterministic_given_seed() {
    let test: Vec<CheckIn> = (0..100)
        .map(|s| mk(s % 7, s % 23, (s % 12) as u8))
        .collect();
    let score = |i: usize, j: usize, k: usize| ((i * 31 + j * 17 + k) % 101) as f64;
    let a = run(&test, 23, score);
    let b = run(&test, 23, score);
    assert_eq!(a.hit_at_k, b.hit_at_k);
    assert_eq!(a.mrr, b.mrr);
}

#[test]
fn different_eval_seeds_sample_different_negatives() {
    let test: Vec<CheckIn> = (0..100)
        .map(|s| mk(s % 7, s % 23, (s % 12) as u8))
        .collect();
    let score = |i: usize, j: usize, k: usize| ((i * 31 + j * 17 + k) % 101) as f64;
    let a = evaluate_ranking(
        &test,
        23,
        &EvalConfig {
            seed: 1,
            ..Default::default()
        },
        score,
    );
    let b = evaluate_ranking(
        &test,
        23,
        &EvalConfig {
            seed: 2,
            ..Default::default()
        },
        score,
    );
    assert!(a.hit_at_k != b.hit_at_k || a.mrr != b.mrr);
}

#[test]
fn hit_at_k_monotone_in_k() {
    let test: Vec<CheckIn> = (0..200)
        .map(|s| mk(s % 9, s % 31, (s % 12) as u8))
        .collect();
    let score = |i: usize, j: usize, k: usize| {
        let mut x = (i as u64) << 32 | (j as u64) << 8 | k as u64;
        x = x.wrapping_mul(0x9e3779b97f4a7c15);
        (x >> 11) as f64
    };
    let mut prev = 0.0;
    for k in [1usize, 5, 10, 50, 101] {
        let m = evaluate_ranking(
            &test,
            31,
            &EvalConfig {
                k,
                ..Default::default()
            },
            score,
        );
        assert!(
            m.hit_at_k >= prev - 1e-12,
            "Hit@{k} = {} decreased from {prev}",
            m.hit_at_k
        );
        prev = m.hit_at_k;
    }
    // At k = 101 (everything), Hit@k must be 1.
    assert_eq!(prev, 1.0);
}

#[test]
fn better_models_score_better() {
    // A model that ranks the true POI with probability p above negatives
    // should order strictly by p.
    let truth: Vec<CheckIn> = (0..300)
        .map(|s| mk(s % 10, s % 37, (s % 12) as u8))
        .collect();
    let hits_for = |boost: f64| {
        run(&truth, 37, |i, j, k| {
            let is_true = truth
                .iter()
                .any(|c| c.user == i && c.poi == j && c.month as usize == k);
            let mut x = (i * 97 + j * 13 + k) as u64;
            x = x.wrapping_mul(0x9e3779b97f4a7c15);
            let noise = ((x >> 40) as f64) / (1u64 << 24) as f64;
            if is_true {
                noise + boost
            } else {
                noise
            }
        })
        .hit_at_k
    };
    let weak = hits_for(0.1);
    let medium = hits_for(0.4);
    let strong = hits_for(2.0);
    assert!(weak < medium && medium < strong, "{weak} {medium} {strong}");
    // `strong` is not exactly 1.0 because sampled negatives can themselves
    // be true interactions of the same (user, month) and carry the boost.
    assert!(strong > 0.7, "strong model only hit {strong}");
}

#[test]
fn granularity_controls_time_index() {
    let test = vec![mk(0, 3, 7)]; // week = 28, hour = 12
    for (g, expect_k) in [
        (Granularity::Month, 7usize),
        (Granularity::Week, 28),
        (Granularity::Hour, 12),
    ] {
        let seen = std::cell::Cell::new(usize::MAX);
        let _ = evaluate_ranking(
            &test,
            10,
            &EvalConfig {
                granularity: g,
                ..Default::default()
            },
            |_, _, k| {
                seen.set(k);
                0.0
            },
        );
        assert_eq!(seen.get(), expect_k, "{}", g.label());
    }
}

#[test]
fn rmse_orders_calibrated_models() {
    let test: Vec<CheckIn> = (0..100)
        .map(|s| mk(s % 5, s % 20, (s % 12) as u8))
        .collect();
    let truth: std::collections::HashSet<(usize, usize, usize)> = test
        .iter()
        .map(|c| (c.user, c.poi, c.month as usize))
        .collect();
    let rmse_for = |pos_score: f64| {
        rmse_positive_negative(
            &test,
            20,
            &EvalConfig::default(),
            |i, j, k| {
                if truth.contains(&(i, j, k)) {
                    pos_score
                } else {
                    0.0
                }
            },
            |i, j, k| truth.contains(&(i, j, k)),
        )
        .0
    };
    assert!(rmse_for(0.9) < rmse_for(0.5));
    assert!(rmse_for(0.5) < rmse_for(0.1));
}

#[test]
fn neg_infinity_scores_never_rank() {
    // The ZeroOut ablation masks POIs to −∞; such a score must lose to
    // every sampled negative (rank 101) and never be NaN-poisoned.
    let test = vec![mk(0, 3, 7)];
    let m = run(
        &test,
        50,
        |_, j, _| {
            if j == 3 {
                f64::NEG_INFINITY
            } else {
                1.0
            }
        },
    );
    assert_eq!(m.hit_at_k, 0.0);
    assert!(m.mrr > 0.0 && m.mrr < 0.02);
}
