//! # tcss-eval
//!
//! The paper's evaluation protocol (§V-C):
//!
//! For every held-out interaction `(i, j, k)`, sample 100 random negative
//! POIs, score the 101 candidates with the model, and rank the true POI.
//! **Hit@10** is the fraction of test interactions ranked in the top 10;
//! **MRR** averages reciprocal ranks per user first, then across users.
//!
//! Models plug in as plain closures `(user, poi, time) → score`, so every
//! model family in the workspace (tensor completion, matrix completion with
//! the time index ignored, sequence models with precomputed score tables)
//! evaluates under the identical protocol.

pub mod diversity;
pub mod metrics;

pub use diversity::{catalogue_coverage, exposure_gini, intra_list_distance, mean_novelty};
pub use metrics::{evaluate_ranking, rmse_positive_negative, EvalConfig, RankingMetrics};
