//! Diversity and coverage metrics for recommendation lists.
//!
//! The paper motivates its location-entropy weighting as a *diversity*
//! mechanism ("a new French restaurant tends to have a higher weight …
//! than Burger King") and illustrates it geographically in Fig 12. These
//! metrics quantify that: how spread out, how novel, and how
//! catalogue-covering the produced top-N lists are.

use std::collections::HashSet;
use tcss_geo::{haversine_km, GeoPoint};

/// Mean pairwise geographic distance (km) within one recommendation list —
/// "intra-list distance", the standard geographic diversity measure.
/// Returns 0.0 for lists shorter than 2.
pub fn intra_list_distance(list: &[usize], locations: &[GeoPoint]) -> f64 {
    if list.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    let mut n = 0.0;
    for (idx, &a) in list.iter().enumerate() {
        for &b in &list[idx + 1..] {
            acc += haversine_km(locations[a], locations[b]);
            n += 1.0;
        }
    }
    acc / n
}

/// Catalogue coverage: the fraction of all POIs that appear in at least
/// one of the given recommendation lists.
pub fn catalogue_coverage(lists: &[Vec<usize>], n_pois: usize) -> f64 {
    if n_pois == 0 {
        return 0.0;
    }
    let covered: HashSet<usize> = lists.iter().flatten().copied().collect();
    covered.len() as f64 / n_pois as f64
}

/// Mean novelty of a list: the average `e_j = exp(−E_j)` entropy weight of
/// its POIs. Higher means the list favours low-entropy POIs — places known
/// to few users (the "tennis court", not the "Costco"), which is exactly
/// what the paper's Eq 12 weighting promotes.
pub fn mean_novelty(list: &[usize], entropy_weights: &[f64]) -> f64 {
    if list.is_empty() {
        return 0.0;
    }
    list.iter().map(|&j| entropy_weights[j]).sum::<f64>() / list.len() as f64
}

/// Gini coefficient of how recommendation exposure distributes over POIs
/// (0 = perfectly even exposure, → 1 = all exposure on one POI). Computed
/// over the concatenation of the given lists.
pub fn exposure_gini(lists: &[Vec<usize>], n_pois: usize) -> f64 {
    if n_pois == 0 {
        return 0.0;
    }
    let mut counts = vec![0.0f64; n_pois];
    let mut total = 0.0;
    for list in lists {
        for &j in list {
            counts[j] += 1.0;
            total += 1.0;
        }
    }
    if total == 0.0 {
        return 0.0;
    }
    counts.sort_by(|a, b| a.partial_cmp(b).expect("counts finite"));
    let n = n_pois as f64;
    let mut cum = 0.0;
    let mut weighted = 0.0;
    for (rank, &c) in counts.iter().enumerate() {
        cum += c;
        weighted += (rank as f64 + 1.0) * c;
    }
    (2.0 * weighted) / (n * cum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<GeoPoint> {
        (0..n).map(|i| GeoPoint::new(0.0, i as f64)).collect()
    }

    #[test]
    fn intra_list_distance_grows_with_spread() {
        let locs = line(10);
        let tight = intra_list_distance(&[0, 1, 2], &locs);
        let wide = intra_list_distance(&[0, 5, 9], &locs);
        assert!(wide > tight);
        assert_eq!(intra_list_distance(&[3], &locs), 0.0);
        assert_eq!(intra_list_distance(&[], &locs), 0.0);
    }

    #[test]
    fn coverage_counts_distinct_pois() {
        let lists = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        assert!((catalogue_coverage(&lists, 6) - 0.5).abs() < 1e-12);
        assert_eq!(catalogue_coverage(&[], 6), 0.0);
        assert_eq!(catalogue_coverage(&lists, 0), 0.0);
    }

    #[test]
    fn novelty_prefers_low_entropy_pois() {
        let e = vec![1.0, 0.1, 0.5];
        assert!(mean_novelty(&[0], &e) > mean_novelty(&[1], &e));
        assert!((mean_novelty(&[0, 2], &e) - 0.75).abs() < 1e-12);
        assert_eq!(mean_novelty(&[], &e), 0.0);
    }

    #[test]
    fn gini_zero_for_uniform_one_for_concentrated() {
        // Uniform exposure over all POIs.
        let uniform: Vec<Vec<usize>> = (0..4).map(|j| vec![j]).collect();
        assert!(exposure_gini(&uniform, 4).abs() < 1e-12);
        // All exposure on one POI out of many.
        let concentrated = vec![vec![0, 0, 0, 0, 0, 0]];
        let g = exposure_gini(&concentrated, 10);
        assert!(g > 0.85, "gini {g}");
        // Empty input.
        assert_eq!(exposure_gini(&[], 5), 0.0);
    }

    #[test]
    fn gini_orders_skewness() {
        let mild = vec![vec![0, 0, 1, 2, 3]];
        let heavy = vec![vec![0, 0, 0, 0, 1]];
        assert!(exposure_gini(&heavy, 4) > exposure_gini(&mild, 4));
    }
}
