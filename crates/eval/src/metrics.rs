//! Ranking metrics and RMSE under the paper's sampled-negative protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use tcss_data::{CheckIn, Granularity};

/// Protocol parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Number of sampled negative POIs per test interaction (paper: 100).
    pub n_negatives: usize,
    /// Cutoff for Hit@K (paper: 10).
    pub k: usize,
    /// Time granularity used to index the tensor.
    pub granularity: Granularity,
    /// RNG seed for negative sampling.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            n_negatives: 100,
            k: 10,
            granularity: Granularity::Month,
            seed: 17,
        }
    }
}

/// Ranking evaluation results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingMetrics {
    /// Fraction of test interactions whose true POI ranked in the top K.
    pub hit_at_k: f64,
    /// Mean reciprocal rank, averaged per user then across users (§V-C).
    pub mrr: f64,
    /// Number of test interactions evaluated.
    pub n: usize,
}

/// Run the paper's ranking protocol over `test` interactions.
///
/// `score(i, j, k)` is the model's predicted score; models that ignore time
/// (matrix completion) simply disregard `k`. Ties rank pessimistically
/// (the true item is placed after equal-scoring negatives), so a constant
/// model scores at chance level rather than artificially high.
pub fn evaluate_ranking(
    test: &[CheckIn],
    n_pois: usize,
    cfg: &EvalConfig,
    score: impl Fn(usize, usize, usize) -> f64,
) -> RankingMetrics {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut hits = 0usize;
    // BTreeMap: deterministic iteration order makes the floating-point
    // summation (and hence the reported MRR) reproducible run-to-run.
    let mut per_user_rr: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
    for c in test {
        let k_idx = cfg.granularity.index(c);
        let true_score = score(c.user, c.poi, k_idx);
        // Rank among `n_negatives` sampled POIs (uniform, excluding the
        // target POI; duplicates allowed as in the usual implementation of
        // this protocol).
        let mut rank = 1usize;
        for _ in 0..cfg.n_negatives {
            let mut j = rng.gen_range(0..n_pois);
            if j == c.poi {
                j = (j + 1) % n_pois;
            }
            let s = score(c.user, j, k_idx);
            if s >= true_score {
                rank += 1;
            }
        }
        if rank <= cfg.k {
            hits += 1;
        }
        let e = per_user_rr.entry(c.user).or_insert((0.0, 0));
        e.0 += 1.0 / rank as f64;
        e.1 += 1;
    }
    let n = test.len();
    let hit_at_k = if n == 0 { 0.0 } else { hits as f64 / n as f64 };
    let mrr = if per_user_rr.is_empty() {
        0.0
    } else {
        per_user_rr
            .values()
            .map(|&(sum, cnt)| sum / cnt as f64)
            .sum::<f64>()
            / per_user_rr.len() as f64
    };
    RankingMetrics { hit_at_k, mrr, n }
}

/// RMSE over positive test entries (target 1) and over an equal number of
/// sampled unobserved entries (target 0) — the "RM positive / negative"
/// columns of the paper's Table III.
///
/// `is_observed(i, j, k)` must answer for the union of train and test
/// positives so sampled negatives are genuinely unobserved.
pub fn rmse_positive_negative(
    test: &[CheckIn],
    n_pois: usize,
    cfg: &EvalConfig,
    score: impl Fn(usize, usize, usize) -> f64,
    is_observed: impl Fn(usize, usize, usize) -> bool,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut pos_se = 0.0;
    let mut neg_se = 0.0;
    let mut n_neg = 0usize;
    for c in test {
        let k_idx = cfg.granularity.index(c);
        let s = score(c.user, c.poi, k_idx);
        pos_se += (1.0 - s) * (1.0 - s);
        // One sampled negative per positive.
        for _attempt in 0..64 {
            let j = rng.gen_range(0..n_pois);
            let k = rng.gen_range(0..cfg.granularity.len());
            if !is_observed(c.user, j, k) {
                let sn = score(c.user, j, k);
                neg_se += sn * sn;
                n_neg += 1;
                break;
            }
        }
    }
    let n = test.len().max(1);
    (
        (pos_se / n as f64).sqrt(),
        if n_neg == 0 {
            0.0
        } else {
            (neg_se / n_neg as f64).sqrt()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(user: usize, poi: usize, month: u8) -> CheckIn {
        CheckIn {
            user,
            poi,
            month,
            week: month * 4,
            hour: 12,
        }
    }

    #[test]
    fn oracle_model_gets_perfect_metrics() {
        // Score 1 on the true entries, 0 elsewhere.
        let test = vec![mk(0, 3, 1), mk(1, 5, 2), mk(0, 7, 4)];
        let truth: std::collections::HashSet<(usize, usize, usize)> = test
            .iter()
            .map(|c| (c.user, c.poi, c.month as usize))
            .collect();
        let m = evaluate_ranking(&test, 50, &EvalConfig::default(), |i, j, k| {
            if truth.contains(&(i, j, k)) {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(m.hit_at_k, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.n, 3);
    }

    #[test]
    fn constant_model_scores_at_chance() {
        // Ties rank pessimistically → rank 101 always → no hits, tiny MRR.
        let test: Vec<CheckIn> = (0..50).map(|u| mk(u % 5, u % 40, (u % 12) as u8)).collect();
        let m = evaluate_ranking(&test, 40, &EvalConfig::default(), |_, _, _| 0.5);
        assert_eq!(m.hit_at_k, 0.0);
        assert!(m.mrr < 0.02);
    }

    #[test]
    fn random_model_hits_near_ten_percent() {
        // With 100 negatives and top-10, a random scorer hits ≈ 10/101.
        let test: Vec<CheckIn> = (0..400)
            .map(|s| mk(s % 20, s % 30, (s % 12) as u8))
            .collect();
        let m = evaluate_ranking(&test, 30, &EvalConfig::default(), |i, j, k| {
            // Deterministic pseudo-random score (splitmix-style mixing).
            let mut x = (i as u64) << 40 | (j as u64) << 20 | k as u64;
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^= x >> 31;
            (x % 100003) as f64 / 100003.0
        });
        assert!(
            (m.hit_at_k - 0.099).abs() < 0.05,
            "hit@10 {} should be near 0.099",
            m.hit_at_k
        );
    }

    #[test]
    fn mrr_is_per_user_averaged() {
        // User 0 has two test entries (ranks 1 and 101); user 1 has one
        // (rank 1). Per-user averaging: ((1 + ~0)/2 + 1)/2 ≈ 0.75, whereas
        // global averaging would give (1 + ~0 + 1)/3 ≈ 0.67.
        let test = vec![mk(0, 0, 0), mk(0, 1, 0), mk(1, 0, 0)];
        let m = evaluate_ranking(&test, 20, &EvalConfig::default(), |_i, j, _k| {
            if j == 0 {
                10.0 // true POI 0 always wins; POI 1 always loses
            } else if j == 1 {
                -10.0
            } else {
                0.0
            }
        });
        assert!((m.mrr - 0.7525).abs() < 0.01, "mrr {}", m.mrr);
    }

    #[test]
    fn empty_test_set_is_zeroes() {
        let m = evaluate_ranking(&[], 10, &EvalConfig::default(), |_, _, _| 0.0);
        assert_eq!(m.hit_at_k, 0.0);
        assert_eq!(m.mrr, 0.0);
        assert_eq!(m.n, 0);
    }

    #[test]
    fn rmse_perfect_model_is_zero_positive() {
        let test = vec![mk(0, 1, 0), mk(1, 2, 3)];
        let truth: std::collections::HashSet<(usize, usize, usize)> = test
            .iter()
            .map(|c| (c.user, c.poi, c.month as usize))
            .collect();
        let (pos, neg) = rmse_positive_negative(
            &test,
            10,
            &EvalConfig::default(),
            |i, j, k| {
                if truth.contains(&(i, j, k)) {
                    1.0
                } else {
                    0.0
                }
            },
            |i, j, k| truth.contains(&(i, j, k)),
        );
        assert_eq!(pos, 0.0);
        assert_eq!(neg, 0.0);
    }

    #[test]
    fn rmse_constant_half_model() {
        let test = vec![mk(0, 1, 0)];
        let (pos, neg) = rmse_positive_negative(
            &test,
            10,
            &EvalConfig::default(),
            |_, _, _| 0.5,
            |_, _, _| false,
        );
        assert!((pos - 0.5).abs() < 1e-12);
        assert!((neg - 0.5).abs() < 1e-12);
    }
}
