//! Property-based tests for the sparse tensor structures.

use proptest::prelude::*;
use tcss_linalg::SymOp;
use tcss_sparse::{CsrMatrix, Mode, ModeGramOp, SparseTensor3};

#[allow(clippy::type_complexity)]
fn entries_strategy(
) -> impl Strategy<Value = ((usize, usize, usize), Vec<(usize, usize, usize, f64)>)> {
    (2usize..7, 2usize..7, 2usize..5).prop_flat_map(|(i, j, k)| {
        proptest::collection::vec((0..i, 0..j, 0..k, 0.25f64..2.0), 0..25)
            .prop_map(move |v| ((i, j, k), v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lookup agrees with the summed raw entries for every cell.
    #[test]
    fn lookup_matches_summed_entries((dims, raw) in entries_strategy()) {
        let t = SparseTensor3::from_entries(dims, raw.clone()).expect("in range");
        let mut expected = std::collections::HashMap::new();
        for (i, j, k, v) in raw {
            *expected.entry((i, j, k)).or_insert(0.0) += v;
        }
        for i in 0..dims.0 {
            for j in 0..dims.1 {
                for k in 0..dims.2 {
                    let want = expected.get(&(i, j, k)).copied().unwrap_or(0.0);
                    prop_assert!((t.get(i, j, k) - want).abs() < 1e-12);
                    prop_assert_eq!(t.contains(i, j, k), expected.contains_key(&(i, j, k)));
                }
            }
        }
        prop_assert_eq!(t.nnz(), expected.len());
    }

    /// Every mode's slices partition the entry set.
    #[test]
    fn slices_partition_entries((dims, raw) in entries_strategy()) {
        let t = SparseTensor3::from_entries(dims, raw).expect("in range");
        for (mode, extent) in [(Mode::One, dims.0), (Mode::Two, dims.1), (Mode::Three, dims.2)] {
            let total: usize = (0..extent).map(|x| t.slice(mode, x).count()).sum();
            prop_assert_eq!(total, t.nnz());
        }
    }

    /// Matricization preserves the multiset of values (Frobenius norm) and
    /// the per-mode squared row norms.
    #[test]
    fn matricization_preserves_norms((dims, raw) in entries_strategy()) {
        let t = SparseTensor3::from_entries(dims, raw).expect("in range");
        for mode in Mode::ALL {
            let a = t.matricize_dense(mode);
            prop_assert!((a.frobenius_norm() - t.frobenius_norm()).abs() < 1e-9);
            for (x, &d) in t.mode_sq_norms(mode).iter().enumerate() {
                let row_sq: f64 = a.row(x).iter().map(|v| v * v).sum();
                prop_assert!((d - row_sq).abs() < 1e-9);
            }
        }
    }

    /// The user–POI matrix sums the time fibers.
    #[test]
    fn user_poi_matrix_sums_time((dims, raw) in entries_strategy()) {
        let t = SparseTensor3::from_entries(dims, raw).expect("in range");
        let m = t.user_poi_matrix();
        for i in 0..dims.0 {
            for j in 0..dims.1 {
                let fiber_sum: f64 = (0..dims.2).map(|k| t.get(i, j, k)).sum();
                prop_assert!((m.get(i, j) - fiber_sum).abs() < 1e-12);
            }
        }
    }

    /// The implicit off-diagonal Gram operator agrees with the explicit
    /// route through dense matricization: for every mode `n` and any `x`,
    /// `ModeGramOp::apply(x) == A⁽ⁿ⁾ (A⁽ⁿ⁾ᵀ x) − diag(A⁽ⁿ⁾A⁽ⁿ⁾ᵀ) ⊙ x`,
    /// where `A⁽ⁿ⁾` is the mode-`n` matricization. This is the operator the
    /// spectral initializer (paper Eq 4) feeds to orthogonal iteration
    /// without ever materializing `A⁽ⁿ⁾A⁽ⁿ⁾ᵀ`.
    #[test]
    fn gram_operator_matches_matricized_matvec((dims, raw) in entries_strategy()) {
        let t = SparseTensor3::from_entries(dims, raw).expect("in range");
        for mode in Mode::ALL {
            let op = ModeGramOp::new(&t, mode);
            let n = op.dim();
            // A deterministic but non-trivial probe vector.
            let x: Vec<f64> = (0..n).map(|i| ((i as f64 + 1.0) * 0.83).sin() + 0.1).collect();
            let mut got = vec![0.0; n];
            op.apply(&x, &mut got);
            // Explicit route: y = A (Aᵀ x) − d ⊙ x via the dense matricization.
            let a = t.matricize_dense(mode);
            let at_x = a.transpose().matvec(&x).expect("shape");
            let a_at_x = a.matvec(&at_x).expect("shape");
            let diag = t.mode_sq_norms(mode);
            for row in 0..n {
                let want = a_at_x[row] - diag[row] * x[row];
                prop_assert!(
                    (got[row] - want).abs() < 1e-9,
                    "mode {:?} row {}: implicit {} vs explicit {}",
                    mode, row, got[row], want
                );
            }
        }
    }

    /// CSR transpose-matvec is the adjoint of matvec: ⟨Ax, y⟩ = ⟨x, Aᵀy⟩.
    #[test]
    fn csr_adjoint_identity(
        triples in proptest::collection::vec((0usize..6, 0usize..5, -2.0f64..2.0), 0..20)
    ) {
        let m = CsrMatrix::from_triples(6, 5, triples);
        let x: Vec<f64> = (0..5).map(|i| (i as f64 * 0.7).cos()).collect();
        let y: Vec<f64> = (0..6).map(|i| (i as f64 * 0.3).sin()).collect();
        let ax = m.matvec(&x);
        let aty = m.matvec_transpose(&y);
        let lhs: f64 = ax.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(aty.iter()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }
}
