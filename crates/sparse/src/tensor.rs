//! Sparse order-3 tensor in deduplicated COO form.

use crate::{Result, SparseError};
use std::collections::HashMap;
use tcss_linalg::{Matrix, SymOp};

/// One nonzero entry of a [`SparseTensor3`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorEntry {
    /// Mode-1 index (user).
    pub i: usize,
    /// Mode-2 index (POI).
    pub j: usize,
    /// Mode-3 index (time unit).
    pub k: usize,
    /// Entry value (1.0 for the paper's binary check-in tensor).
    pub value: f64,
}

/// Which mode (axis) of the tensor an operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Users (dimension `I`).
    One,
    /// POIs (dimension `J`).
    Two,
    /// Time units (dimension `K`).
    Three,
}

impl Mode {
    /// All three modes, in order.
    pub const ALL: [Mode; 3] = [Mode::One, Mode::Two, Mode::Three];

    /// Index of this mode's coordinate within an `(i, j, k)` triple.
    fn select(&self, e: &TensorEntry) -> usize {
        match self {
            Mode::One => e.i,
            Mode::Two => e.j,
            Mode::Three => e.k,
        }
    }
}

/// A sparse order-3 tensor `X ∈ ℝ^{I×J×K}` stored as deduplicated COO
/// triples sorted lexicographically by `(i, j, k)`.
///
/// Duplicate indices passed to the constructor are **summed** (a user
/// checking in at the same POI in the same time unit twice still yields
/// `X = 1` in the paper's binary setting; callers that want binary semantics
/// use [`SparseTensor3::binarized`]).
#[derive(Debug, Clone)]
pub struct SparseTensor3 {
    dims: (usize, usize, usize),
    entries: Vec<TensorEntry>,
    /// `index[m][x]` lists positions into `entries` whose mode-`m` coordinate
    /// is `x`; built lazily at construction, used by slice queries and the
    /// Gram operators.
    index: [Vec<Vec<u32>>; 3],
}

impl SparseTensor3 {
    /// Build a tensor from raw `(i, j, k, value)` entries.
    ///
    /// Duplicates are summed; zero-valued results are kept (they still mark
    /// an *observed* entry, which matters for train/test bookkeeping).
    pub fn from_entries(
        dims: (usize, usize, usize),
        raw: impl IntoIterator<Item = (usize, usize, usize, f64)>,
    ) -> Result<Self> {
        let mut map: HashMap<(usize, usize, usize), f64> = HashMap::new();
        for (i, j, k, v) in raw {
            if i >= dims.0 || j >= dims.1 || k >= dims.2 {
                return Err(SparseError::IndexOutOfBounds {
                    index: (i, j, k),
                    dims,
                });
            }
            *map.entry((i, j, k)).or_insert(0.0) += v;
        }
        let mut entries: Vec<TensorEntry> = map
            .into_iter()
            .map(|((i, j, k), value)| TensorEntry { i, j, k, value })
            .collect();
        entries.sort_by_key(|e| (e.i, e.j, e.k));
        let index = Self::build_index(dims, &entries);
        Ok(SparseTensor3 {
            dims,
            entries,
            index,
        })
    }

    /// Empty tensor of the given dimensions.
    pub fn empty(dims: (usize, usize, usize)) -> Self {
        SparseTensor3 {
            dims,
            entries: Vec::new(),
            index: [
                vec![Vec::new(); dims.0],
                vec![Vec::new(); dims.1],
                vec![Vec::new(); dims.2],
            ],
        }
    }

    fn build_index(dims: (usize, usize, usize), entries: &[TensorEntry]) -> [Vec<Vec<u32>>; 3] {
        let mut idx = [
            vec![Vec::new(); dims.0],
            vec![Vec::new(); dims.1],
            vec![Vec::new(); dims.2],
        ];
        for (pos, e) in entries.iter().enumerate() {
            idx[0][e.i].push(pos as u32);
            idx[1][e.j].push(pos as u32);
            idx[2][e.k].push(pos as u32);
        }
        idx
    }

    /// `(I, J, K)` dimensions.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of stored (observed) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of cells that are observed: `nnz / (I·J·K)`.
    pub fn density(&self) -> f64 {
        let total = (self.dims.0 * self.dims.1 * self.dims.2) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / total
        }
    }

    /// All stored entries, sorted by `(i, j, k)`.
    #[inline]
    pub fn entries(&self) -> &[TensorEntry] {
        &self.entries
    }

    /// Value at `(i, j, k)`; 0.0 for unobserved cells.
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.entries
            .binary_search_by_key(&(i, j, k), |e| (e.i, e.j, e.k))
            .map(|pos| self.entries[pos].value)
            .unwrap_or(0.0)
    }

    /// Whether `(i, j, k)` is an observed entry.
    pub fn contains(&self, i: usize, j: usize, k: usize) -> bool {
        self.entries
            .binary_search_by_key(&(i, j, k), |e| (e.i, e.j, e.k))
            .is_ok()
    }

    /// Entries whose mode-`m` coordinate equals `x` (a tensor "slice").
    pub fn slice(&self, mode: Mode, x: usize) -> impl Iterator<Item = &TensorEntry> {
        let list: &[u32] = match mode {
            Mode::One => &self.index[0][x],
            Mode::Two => &self.index[1][x],
            Mode::Three => &self.index[2][x],
        };
        list.iter().map(move |&p| &self.entries[p as usize])
    }

    /// A copy with every stored value replaced by 1.0 (the paper's binary
    /// check-in semantics).
    pub fn binarized(&self) -> SparseTensor3 {
        let mut t = self.clone();
        for e in &mut t.entries {
            e.value = 1.0;
        }
        t
    }

    /// Collapse the time mode: the `I × J` user–POI interaction matrix
    /// `M_{ij} = Σ_k X_{ijk}` used by the matrix-completion baselines.
    pub fn user_poi_matrix(&self) -> crate::CsrMatrix {
        let mut triples: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz());
        for e in &self.entries {
            triples.push((e.i, e.j, e.value));
        }
        crate::CsrMatrix::from_triples(self.dims.0, self.dims.1, triples)
    }

    /// Dense mode-`m` matricization.
    ///
    /// Following §IV-A of the paper: mode-1 gives `A ∈ ℝ^{I×(JK)}` with
    /// `A_{i,(j·K+k)} = X_{ijk}` (and cyclically for modes 2 and 3). Only
    /// suitable for test-scale tensors; production code paths use
    /// [`ModeGramOp`] instead.
    pub fn matricize_dense(&self, mode: Mode) -> Matrix {
        let (i_dim, j_dim, k_dim) = self.dims;
        let (rows, cols) = match mode {
            Mode::One => (i_dim, j_dim * k_dim),
            Mode::Two => (j_dim, i_dim * k_dim),
            Mode::Three => (k_dim, i_dim * j_dim),
        };
        let mut m = Matrix::zeros(rows, cols);
        for e in &self.entries {
            let (r, c) = match mode {
                Mode::One => (e.i, e.j * k_dim + e.k),
                Mode::Two => (e.j, e.i * k_dim + e.k),
                Mode::Three => (e.k, e.i * j_dim + e.j),
            };
            m.set(r, c, e.value);
        }
        m
    }

    /// Squared row norms of the mode-`m` matricization:
    /// `d_x = Σ_{entries with mode-m coord x} value²`.
    ///
    /// These are the Gram diagonal entries the spectral initializer zeroes
    /// out (the paper's `(A Aᵀ)|off-diag`).
    pub fn mode_sq_norms(&self, mode: Mode) -> Vec<f64> {
        let n = match mode {
            Mode::One => self.dims.0,
            Mode::Two => self.dims.1,
            Mode::Three => self.dims.2,
        };
        let mut d = vec![0.0; n];
        for e in &self.entries {
            d[mode.select(e)] += e.value * e.value;
        }
        d
    }

    /// Per-mode histograms of nonzero counts (handy for preprocessing
    /// filters and dataset statistics).
    pub fn mode_counts(&self, mode: Mode) -> Vec<usize> {
        let lists = match mode {
            Mode::One => &self.index[0],
            Mode::Two => &self.index[1],
            Mode::Three => &self.index[2],
        };
        lists.iter().map(|l| l.len()).collect()
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.value * e.value)
            .sum::<f64>()
            .sqrt()
    }
}

/// Matrix-free symmetric operator `x ↦ (A Aᵀ)|off-diag · x` where `A` is the
/// mode-`m` matricization of a [`SparseTensor3`].
///
/// Each application costs `O(nnz)` plus a dense scratch pass over the
/// "fiber" dimension: `y = A(Aᵀx) − d ⊙ x` with `d` the squared row norms.
/// This is the operator behind the paper's spectral initialization (Eq 4).
pub struct ModeGramOp<'a> {
    tensor: &'a SparseTensor3,
    mode: Mode,
    diag: Vec<f64>,
    fiber_len: usize,
}

impl<'a> ModeGramOp<'a> {
    /// Create the off-diagonal Gram operator for one mode of the tensor.
    pub fn new(tensor: &'a SparseTensor3, mode: Mode) -> Self {
        let (i, j, k) = tensor.dims();
        let fiber_len = match mode {
            Mode::One => j * k,
            Mode::Two => i * k,
            Mode::Three => i * j,
        };
        ModeGramOp {
            tensor,
            mode,
            diag: tensor.mode_sq_norms(mode),
            fiber_len,
        }
    }

    fn fiber_index(&self, e: &TensorEntry) -> usize {
        let (_, j_dim, k_dim) = self.tensor.dims();
        match self.mode {
            Mode::One => e.j * k_dim + e.k,
            Mode::Two => e.i * k_dim + e.k,
            Mode::Three => e.i * j_dim + e.j,
        }
    }
}

impl SymOp for ModeGramOp<'_> {
    fn dim(&self) -> usize {
        match self.mode {
            Mode::One => self.tensor.dims().0,
            Mode::Two => self.tensor.dims().1,
            Mode::Three => self.tensor.dims().2,
        }
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // t = Aᵀ x (length = fiber dimension), accumulated sparsely. This
        // scatter stays serial: fibers are shared across rows, so chunking
        // it would need per-chunk fiber buffers longer than the pass itself.
        let mut t = vec![0.0; self.fiber_len];
        for e in self.tensor.entries() {
            let row = self.mode.select(e);
            let f = self.fiber_index(e);
            t[f] += e.value * x[row];
        }
        // y = A t − d ⊙ x. The gather is a per-row dot over the tensor's
        // mode index, parallelized over fixed row chunks. Each row reduces
        // with four independent accumulators in the canonical lane order of
        // `tcss_linalg::kernels` (lane l takes every 4th entry starting at
        // l, in sorted entry order; fixed pairwise combine; sequential
        // tail) — a pure function of the row's entry list, so the result
        // stays bit-for-bit thread-count independent. The indexed loads
        // can't autovectorize, but the four parallel dependency chains
        // cover the gather latency the old serial `sum()` stalled on.
        let rows = y.len();
        const ROWS_PER_CHUNK: usize = 256;
        let lists: &[Vec<u32>] = match self.mode {
            Mode::One => &self.tensor.index[0],
            Mode::Two => &self.tensor.index[1],
            Mode::Three => &self.tensor.index[2],
        };
        let entries = self.tensor.entries();
        let sums = tcss_linalg::map_chunks(rows, ROWS_PER_CHUNK, |range| {
            range
                .map(|row| {
                    let pos = &lists[row];
                    let main = pos.len() - pos.len() % 4;
                    let mut acc = [0.0f64; 4];
                    for quad in pos[..main].chunks_exact(4) {
                        for (a, &p) in acc.iter_mut().zip(quad.iter()) {
                            let e = &entries[p as usize];
                            *a += e.value * t[self.fiber_index(e)];
                        }
                    }
                    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
                    for &p in &pos[main..] {
                        let e = &entries[p as usize];
                        s += e.value * t[self.fiber_index(e)];
                    }
                    s
                })
                .collect::<Vec<f64>>()
        });
        let mut row = 0;
        for chunk in sums {
            for s in chunk {
                y[row] += s;
                row += 1;
            }
        }
        for (yi, (&di, &xi)) in y.iter_mut().zip(self.diag.iter().zip(x.iter())) {
            *yi -= di * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcss_linalg::{top_r_eigenvectors, DenseSymOp};

    fn small_tensor() -> SparseTensor3 {
        SparseTensor3::from_entries(
            (3, 4, 2),
            vec![
                (0, 0, 0, 1.0),
                (0, 1, 1, 1.0),
                (1, 0, 0, 1.0),
                (1, 2, 1, 1.0),
                (2, 3, 0, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = small_tensor();
        assert_eq!(t.nnz(), 5);
        assert_eq!(t.get(0, 0, 0), 1.0);
        assert_eq!(t.get(0, 0, 1), 0.0);
        assert!(t.contains(1, 2, 1));
        assert!(!t.contains(2, 0, 0));
        assert!((t.density() - 5.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_summed_and_binarized_resets() {
        let t = SparseTensor3::from_entries(
            (2, 2, 2),
            vec![(0, 0, 0, 1.0), (0, 0, 0, 1.0), (1, 1, 1, 1.0)],
        )
        .unwrap();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(0, 0, 0), 2.0);
        let b = t.binarized();
        assert_eq!(b.get(0, 0, 0), 1.0);
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let r = SparseTensor3::from_entries((2, 2, 2), vec![(2, 0, 0, 1.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn slices_cover_all_entries() {
        let t = small_tensor();
        let user0: Vec<_> = t.slice(Mode::One, 0).collect();
        assert_eq!(user0.len(), 2);
        let poi0: Vec<_> = t.slice(Mode::Two, 0).collect();
        assert_eq!(poi0.len(), 2);
        let time1: Vec<_> = t.slice(Mode::Three, 1).collect();
        assert_eq!(time1.len(), 2);
        let total: usize = (0..3).map(|i| t.slice(Mode::One, i).count()).sum();
        assert_eq!(total, t.nnz());
    }

    #[test]
    fn matricization_shapes_and_layout() {
        let t = small_tensor();
        let a = t.matricize_dense(Mode::One);
        assert_eq!(a.shape(), (3, 8));
        // X_{0,1,1} lands at column j*K + k = 1*2 + 1 = 3.
        assert_eq!(a.get(0, 3), 1.0);
        let b = t.matricize_dense(Mode::Two);
        assert_eq!(b.shape(), (4, 6));
        // X_{1,2,1} → row 2, column i*K + k = 1*2+1 = 3.
        assert_eq!(b.get(2, 3), 1.0);
        let c = t.matricize_dense(Mode::Three);
        assert_eq!(c.shape(), (2, 12));
        // X_{2,3,0} → row 0, column i*J + j = 2*4+3 = 11.
        assert_eq!(c.get(0, 11), 1.0);
    }

    #[test]
    fn mode_sq_norms_match_matricization() {
        let t = small_tensor();
        for mode in Mode::ALL {
            let a = t.matricize_dense(mode);
            let d = t.mode_sq_norms(mode);
            for (i, &di) in d.iter().enumerate() {
                let row_norm_sq: f64 = a.row(i).iter().map(|v| v * v).sum();
                assert!((di - row_norm_sq).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_op_matches_dense_offdiag_gram() {
        let t = small_tensor();
        for mode in Mode::ALL {
            let a = t.matricize_dense(mode);
            let mut gram = a.matmul(&a.transpose()).unwrap();
            gram.zero_diagonal();
            let op = ModeGramOp::new(&t, mode);
            let n = gram.rows();
            // Compare operator application on each basis vector.
            for b in 0..n {
                let mut x = vec![0.0; n];
                x[b] = 1.0;
                let mut y = vec![0.0; n];
                op.apply(&x, &mut y);
                let expected = gram.col(b);
                for i in 0..n {
                    assert!(
                        (y[i] - expected[i]).abs() < 1e-12,
                        "mode {mode:?}, basis {b}, row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn gram_op_eigen_matches_dense_eigen() {
        // Larger random-ish tensor: verify top-2 eigenvalues of the implicit
        // operator match the dense off-diagonal Gram matrix.
        let mut raw = Vec::new();
        for s in 0..40usize {
            let i = (s * 7) % 8;
            let j = (s * 5) % 6;
            let k = (s * 3) % 4;
            raw.push((i, j, k, 1.0));
        }
        let t = SparseTensor3::from_entries((8, 6, 4), raw).unwrap();
        let a = t.matricize_dense(Mode::One);
        let mut gram = a.matmul(&a.transpose()).unwrap();
        gram.zero_diagonal();
        let dense_op = DenseSymOp::new(&gram);
        let cfg = tcss_linalg::eigen::OrthIterConfig::default();
        let (dense_vals, _) = top_r_eigenvectors(&dense_op, 2, &cfg).unwrap();
        let sparse_op = ModeGramOp::new(&t, Mode::One);
        let (sparse_vals, _) = top_r_eigenvectors(&sparse_op, 2, &cfg).unwrap();
        for k in 0..2 {
            assert!(
                (dense_vals[k] - sparse_vals[k]).abs() < 1e-6,
                "{dense_vals:?} vs {sparse_vals:?}"
            );
        }
    }

    #[test]
    fn user_poi_matrix_collapses_time() {
        let t = SparseTensor3::from_entries(
            (2, 2, 3),
            vec![(0, 0, 0, 1.0), (0, 0, 2, 1.0), (1, 1, 1, 1.0)],
        )
        .unwrap();
        let m = t.user_poi_matrix();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn empty_tensor_behaves() {
        let t = SparseTensor3::empty((2, 2, 2));
        assert_eq!(t.nnz(), 0);
        assert_eq!(t.density(), 0.0);
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.mode_counts(Mode::One), vec![0, 0]);
    }

    #[test]
    fn matrix_frobenius_matches_tensor() {
        let t = small_tensor();
        let a = t.matricize_dense(Mode::One);
        assert!((t.frobenius_norm() - a.frobenius_norm()).abs() < 1e-12);
    }
}
