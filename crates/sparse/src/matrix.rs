//! Compressed sparse row (CSR) matrix.

use tcss_linalg::Matrix;

/// A CSR sparse matrix of `f64`.
///
/// Duplicate `(row, col)` triples are summed at construction. Columns within
/// a row are sorted ascending, enabling `O(log nnz_row)` lookups.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from `(row, col, value)` triples; duplicates are summed.
    pub fn from_triples(rows: usize, cols: usize, mut triples: Vec<(usize, usize, f64)>) -> Self {
        triples.retain(|&(r, c, _)| r < rows && c < cols);
        triples.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates (sorted, so duplicates are adjacent).
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        // Counting sort into CSR arrays.
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let (col_idx, values) = merged.into_iter().map(|(_, c, v)| (c, v)).unzip();
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(r, c)`; 0.0 when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterate the stored `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(&c, &v)| (c, v))
    }

    /// Iterate all stored `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// `y = self · x` (dense input/output).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        y
    }

    /// `y = selfᵀ · x` without materializing the transpose.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                y[c] += v * xr;
            }
        }
        y
    }

    /// Dense copy (test-scale only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m.set(r, c, v);
        }
        m
    }

    /// Row sums (e.g. per-user check-in counts).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triples_and_get() {
        let m = CsrMatrix::from_triples(3, 3, vec![(0, 1, 2.0), (2, 0, 1.0), (0, 2, 3.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_summed() {
        let m = CsrMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_triples_dropped() {
        let m = CsrMatrix::from_triples(2, 2, vec![(5, 0, 1.0), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty_rows_have_empty_iterators() {
        let m = CsrMatrix::from_triples(4, 2, vec![(0, 0, 1.0), (3, 1, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row(2).count(), 0);
        assert_eq!(m.row(3).count(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_triples(
            3,
            4,
            vec![(0, 0, 1.0), (0, 3, 2.0), (1, 1, -1.0), (2, 2, 0.5)],
        );
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = m.matvec(&x);
        let dense = m.to_dense();
        let y_dense = dense.matvec(&x).unwrap();
        assert_eq!(y, y_dense);
    }

    #[test]
    fn matvec_transpose_matches_dense() {
        let m = CsrMatrix::from_triples(3, 2, vec![(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]);
        let x = [1.0, 1.0, 1.0];
        let y = m.matvec_transpose(&x);
        let dense_t = m.to_dense().transpose();
        let y_dense = dense_t.matvec(&x).unwrap();
        assert_eq!(y, y_dense);
    }

    #[test]
    fn row_sums_count_checkins() {
        let m = CsrMatrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 2, 4.0)]);
        assert_eq!(m.row_sums(), vec![2.0, 4.0]);
    }

    #[test]
    fn iter_is_row_major_sorted() {
        let m = CsrMatrix::from_triples(2, 3, vec![(1, 2, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        let order: Vec<(usize, usize)> = m.iter().map(|(r, c, _)| (r, c)).collect();
        assert_eq!(order, vec![(0, 1), (1, 0), (1, 2)]);
    }
}
