//! # tcss-sparse
//!
//! Sparse tensor and matrix substrate for the TCSS reproduction.
//!
//! The paper's data object is a binary order-3 check-in tensor
//! `X ∈ {0,1}^{I×J×K}` (user × POI × time unit) that is extremely sparse —
//! only observed check-ins are stored. Everything downstream (spectral
//! initialization, the rewritten loss, every baseline) consumes the
//! [`SparseTensor3`] defined here.
//!
//! * [`SparseTensor3`] — deduplicated COO storage with per-mode index lists,
//!   mode-n matricization, and the matrix-free Gram operators
//!   ([`ModeGramOp`]) that the spectral initializer (paper Eq 4) applies
//!   without ever materializing an `I × I` matrix.
//! * [`CsrMatrix`] — compressed sparse rows, used for the user–POI matrix
//!   fed to the matrix-completion baselines and for graph-ish kernels.

pub mod matrix;
pub mod tensor;

pub use matrix::CsrMatrix;
pub use tensor::{Mode, ModeGramOp, SparseTensor3, TensorEntry};

/// Errors produced by sparse-structure constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's index exceeds the declared dimensions.
    IndexOutOfBounds {
        /// The offending (i, j, k) index.
        index: (usize, usize, usize),
        /// The declared tensor dimensions.
        dims: (usize, usize, usize),
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { index, dims } => write!(
                f,
                "index {:?} out of bounds for tensor of dims {:?}",
                index, dims
            ),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, SparseError>;
