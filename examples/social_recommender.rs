//! Social recommendations: how the social-Hausdorff head changes what a
//! user is shown.
//!
//! The scenario: pick a user with cross-community friends and compare the
//! recommendations of (a) TCSS without the social head (λ = 0) and
//! (b) the full model — measuring how many recommended POIs are places the
//! user's *friends* visit that the user has never been to (the "ask a
//! friend for a restaurant tip" effect the paper motivates).
//!
//! Run with `cargo run --release --example social_recommender`.

use std::collections::HashSet;
use tcss::prelude::*;

fn friend_poi_coverage(
    model: &TcssModel,
    data: &Dataset,
    visited: &[HashSet<usize>],
    user: usize,
    top_n: usize,
) -> (usize, usize) {
    // (novel friend POIs in top-N, novel POIs in top-N overall)
    let friend_pois: HashSet<usize> = data
        .social
        .neighbors(user)
        .iter()
        .flat_map(|&f| visited[f].iter().copied())
        .collect();
    let mut novel_friend = 0;
    let mut novel = 0;
    for k in 0..12 {
        for (poi, _) in model.recommend(user, k, top_n) {
            if visited[user].contains(&poi) {
                continue;
            }
            novel += 1;
            if friend_pois.contains(&poi) {
                novel_friend += 1;
            }
        }
    }
    (novel_friend, novel)
}

fn main() {
    let raw = SynthPreset::Gowalla.generate();
    let data = preprocess(&raw, &PreprocessConfig::default());
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 42);
    let mut visited: Vec<HashSet<usize>> = vec![HashSet::new(); data.n_users];
    for c in &split.train {
        visited[c.user].insert(c.poi);
    }

    println!("training TCSS without the social head (λ = 0)…");
    let no_social = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig {
            lambda: 0.0,
            hausdorff: HausdorffVariant::None,
            ..Default::default()
        },
    )
    .train(|_, _| {});

    println!("training the full TCSS (social Hausdorff head on)…");
    let full = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig::default(),
    )
    .train(|_, _| {});

    // Users with the most friends make the effect visible.
    let mut users: Vec<usize> = (0..data.n_users).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(data.social.degree(u)));

    println!("\nNovel friend-POI share of each user's top-5 recommendations");
    println!("(summed over the 12 months; 'novel' = not in the user's own history)");
    println!(
        "{:>6} {:>8} {:>22} {:>22}",
        "user", "friends", "λ=0 (friend/novel)", "full (friend/novel)"
    );
    let mut improved = 0;
    let mut total = 0;
    for &u in users.iter().take(10) {
        let (nf0, nn0) = friend_poi_coverage(&no_social, &data, &visited, u, 5);
        let (nf1, nn1) = friend_poi_coverage(&full, &data, &visited, u, 5);
        println!(
            "{:>6} {:>8} {:>15}/{:<6} {:>15}/{:<6}",
            u,
            data.social.degree(u),
            nf0,
            nn0,
            nf1,
            nn1
        );
        let share0 = nf0 as f64 / nn0.max(1) as f64;
        let share1 = nf1 as f64 / nn1.max(1) as f64;
        if share1 >= share0 {
            improved += 1;
        }
        total += 1;
    }
    println!(
        "\nthe social head kept or raised the friend-POI share for {improved}/{total} \
         of the most-connected users"
    );

    // Ranking quality under the paper's protocol, for both variants.
    for (name, model) in [("λ=0", &no_social), ("full", &full)] {
        let m = evaluate_ranking(
            &split.test,
            data.n_pois(),
            &EvalConfig::default(),
            |i, j, k| model.predict(i, j, k),
        );
        println!("{name}: Hit@10 {:.4}, MRR {:.4}", m.hit_at_k, m.mrr);
    }
}
