//! Quickstart: generate an LBSN, train TCSS, get recommendations, evaluate.
//!
//! Run with `cargo run --release --example quickstart`.

use tcss::prelude::*;

fn main() {
    // 1. Data: a synthetic LBSN mirroring the paper's Gowalla setup
    //    (seasonal categories, social homophily, power-law popularity),
    //    filtered with the paper's §V-A preprocessing rules.
    let raw = SynthPreset::Gowalla.generate();
    let data = preprocess(&raw, &PreprocessConfig::default());
    println!("{}", data.summary(Granularity::Month));

    // 2. Split 80/20 per user, as in §V-C.
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 42);
    println!(
        "train: {} check-ins, test: {} check-ins",
        split.train.len(),
        split.test.len()
    );

    // 3. Train the full TCSS model (spectral init, whole-data rewritten
    //    loss, social Hausdorff head).
    let trainer = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig::default(),
    );
    let mut first_loss = f64::NAN;
    let mut last_loss = f64::NAN;
    let model = trainer.train(|epoch, loss| {
        if epoch == 0 {
            first_loss = loss;
        }
        last_loss = loss;
    });
    println!("loss: {first_loss:.1} -> {last_loss:.1}");

    // 4. Recommend: where should user 7 go in June (k = 5)?
    let user = 7;
    println!("\nTop-10 June recommendations for user {user}:");
    for (rank, (poi, score)) in model.recommend(user, 5, 10).into_iter().enumerate() {
        let loc = data.pois[poi].location;
        println!(
            "  {:>2}. POI {poi:>4} [{}] at ({:.3}, {:.3})  score {score:.3}",
            rank + 1,
            data.pois[poi].category.label(),
            loc.lon,
            loc.lat
        );
    }

    // 5. Evaluate under the paper's protocol (Hit@10 / MRR over 100
    //    sampled negatives per held-out check-in).
    let metrics = evaluate_ranking(
        &split.test,
        data.n_pois(),
        &EvalConfig::default(),
        |i, j, k| model.predict(i, j, k),
    );
    println!(
        "\nHit@10 = {:.4}, MRR = {:.4} over {} test interactions",
        metrics.hit_at_k, metrics.mrr, metrics.n
    );
}
