//! Bring your own data: build a [`Dataset`] by hand (or from CSV files in
//! the crate's interchange format), train, and compare models.
//!
//! The CSV format matches `tcss_data::io`: three files
//! `<stem>.pois.csv`, `<stem>.checkins.csv`, `<stem>.edges.csv` — the shape
//! of the public Gowalla/Foursquare dumps, so real data drops in directly.
//!
//! Run with `cargo run --release --example custom_dataset`.

// Index loops mirror the table/axis layout here; see tcss-linalg's
// crate-level rationale for the same allow.
#![allow(clippy::needless_range_loop)]

use tcss::baselines::{cp::CpConfig, CpModel};
use tcss::data::io::{load_dataset, save_dataset};
use tcss::prelude::*;

fn main() {
    // A hand-built micro-LBSN: a beach town. Two friends (0, 1) hit the
    // boardwalk POIs in summer; user 2 skis in winter; user 3 is new in
    // town and only knows the café.
    let pois = vec![
        poi(-117.10, 32.70, Category::Food),     // 0: café
        poi(-117.16, 32.71, Category::Outdoor),  // 1: boardwalk
        poi(-117.17, 32.71, Category::Outdoor),  // 2: surf spot
        poi(-116.60, 33.00, Category::Outdoor),  // 3: mountain trail (far)
        poi(-117.15, 32.72, Category::Shopping), // 4: mall
    ];
    let mut checkins = Vec::new();
    for month in [5u8, 6, 7, 8] {
        for user in [0usize, 1] {
            checkins.push(check(user, 1, month));
            checkins.push(check(user, 2, month));
        }
    }
    for month in [0u8, 1, 11] {
        checkins.push(check(2, 3, month));
    }
    for month in 0..12u8 {
        checkins.push(check(0, 0, month));
        checkins.push(check(3, 0, month));
    }
    checkins.push(check(2, 4, 3));
    let social = SocialGraph::from_edges(4, vec![(0, 1), (1, 3)]);
    let data = Dataset {
        name: "beach-town".into(),
        n_users: 4,
        pois,
        checkins,
        social,
    };

    // Round-trip through the CSV interchange format.
    let dir = std::env::temp_dir().join("tcss_custom_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stem = dir.join("beach");
    save_dataset(&data, &stem).expect("save");
    let data = load_dataset("beach-town", &stem).expect("load");
    println!("{}", data.summary(Granularity::Month));

    // Tiny data: drop the social head's entropy weighting noise by training
    // the compared models on everything (no split at this scale).
    let cfg = TcssConfig {
        rank: 3, // r must not exceed min(I, J, K) = 4 users
        epochs: 400,
        ..Default::default()
    };
    let trainer = TcssTrainer::new(&data, &data.checkins, Granularity::Month, cfg);
    let tcss = trainer.train(|_, _| {});
    let cp = CpModel::fit(
        &data,
        &data.checkins,
        Granularity::Month,
        &CpConfig {
            rank: 3,
            epochs: 400,
            ..Default::default()
        },
    );

    // Would we send user 3 (friend of beach-goer 1) to the boardwalk in
    // July, even though they only ever visited the café?
    println!("\nJuly scores for user 3 (new in town, friend of a beach-goer):");
    println!("{:>22} {:>8} {:>8}", "POI", "TCSS", "CP");
    let names = ["café", "boardwalk", "surf spot", "mountain trail", "mall"];
    for j in 0..5 {
        println!(
            "{:>22} {:>8.3} {:>8.3}",
            names[j],
            tcss.predict(3, j, 6),
            cp.score(3, j, 6)
        );
    }
    let rec = tcss.recommend(3, 6, 2);
    println!(
        "\nTCSS July picks for user 3: {} and {}",
        names[rec[0].0], names[rec[1].0]
    );

    // And in January the beach should fade.
    let jan = tcss.recommend(3, 0, 2);
    println!(
        "TCSS January picks for user 3: {} and {}",
        names[jan[0].0], names[jan[1].0]
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn poi(lon: f64, lat: f64, category: Category) -> Poi {
    Poi {
        location: GeoPoint::new(lon, lat),
        category,
    }
}

fn check(user: usize, poi: usize, month: u8) -> CheckIn {
    CheckIn {
        user,
        poi,
        month,
        week: (month as u16 * 4) as u8,
        hour: 12,
    }
}
