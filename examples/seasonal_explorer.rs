//! Seasonal exploration: the time dimension in action.
//!
//! The paper's motivating observation is that visiting preferences are
//! time-sensitive — "holiday hotspots transition from aquatics centers in
//! summer to ski resorts in winter". This example trains TCSS on the
//! outdoor-POI slice (the most seasonal category) and shows how one user's
//! recommendations rotate across the year, plus the cosine-similarity
//! structure of the learned month embeddings (the paper's Fig 6 heatmap).
//!
//! Run with `cargo run --release --example seasonal_explorer`.

// Index loops mirror the table/axis layout here; see tcss-linalg's
// crate-level rationale for the same allow.
#![allow(clippy::needless_range_loop)]

use tcss::linalg::cosine_similarity_matrix;
use tcss::prelude::*;

fn main() {
    let raw = SynthPreset::Gowalla.generate();
    let outdoor = raw.filter_category(Category::Outdoor);
    let data = preprocess(
        &outdoor,
        &PreprocessConfig {
            min_checkins: 5, // the category slice is thinner than the full set
            ..Default::default()
        },
    );
    println!("{}", data.summary(Granularity::Month));

    let split = train_test_split(&data.checkins, data.n_users, 0.8, 42);
    let trainer = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig::default(),
    );
    let model = trainer.train(|_, _| {});

    // How much do one user's winter and summer top-5 lists differ?
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    let user = 3;
    println!("\nTop-5 outdoor recommendations for user {user}, by month:");
    let mut lists: Vec<Vec<usize>> = Vec::new();
    for k in 0..12 {
        let top: Vec<usize> = model
            .recommend(user, k, 5)
            .into_iter()
            .map(|(j, _)| j)
            .collect();
        println!("  {}: {:?}", MONTHS[k], top);
        lists.push(top);
    }
    let winter: std::collections::HashSet<_> = lists[0].iter().chain(&lists[1]).collect();
    let summer: std::collections::HashSet<_> = lists[6].iter().chain(&lists[7]).collect();
    let overlap = winter.intersection(&summer).count();
    println!(
        "\nJan/Feb vs Jul/Aug top-5 overlap: {overlap} of {} POIs — seasonal rotation {}",
        winter.len().max(summer.len()),
        if overlap <= winter.len() / 2 {
            "confirmed"
        } else {
            "weak"
        }
    );

    // The learned month embeddings: adjacent months should be similar
    // (the seasonal blocks of the paper's Fig 6).
    let sim = cosine_similarity_matrix(&model.u3);
    println!("\nMonth-embedding cosine similarity (learned time factors):");
    print!("     ");
    for m in MONTHS {
        print!("{m:>6}");
    }
    println!();
    for i in 0..12 {
        print!("{:>4} ", MONTHS[i]);
        for j in 0..12 {
            print!("{:>6.2}", sim.get(i, j));
        }
        println!();
    }
    let adjacent: f64 = (0..12).map(|i| sim.get(i, (i + 1) % 12)).sum::<f64>() / 12.0;
    let opposite: f64 = (0..12).map(|i| sim.get(i, (i + 6) % 12)).sum::<f64>() / 12.0;
    println!("\nmean similarity: adjacent months {adjacent:+.3}, opposite months {opposite:+.3}");
}
