//! `tcss` — command-line interface to the TCSS reproduction.
//!
//! ```text
//! tcss generate --preset gowalla --out data/gowalla     # write CSV dataset
//! tcss train    --data data/gowalla --model m.tcss      # train, save model
//! tcss recommend --data data/gowalla --model m.tcss --user 7 --month 5
//! tcss recommend-batch --data data/gowalla --model m.tcss --requests 7:5,3:1 --top 5
//! tcss evaluate --data data/gowalla --model m.tcss      # Hit@10 / MRR
//! tcss serve    --data data/gowalla --model m.tcss --addr 127.0.0.1:7464
//! tcss query    --addr 127.0.0.1:7464 --user 7 --month 5 --top 10
//! ```
//!
//! Datasets use the three-file CSV interchange format of `tcss_data::io`;
//! models use the text format of `tcss_core::model_io`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tcss::core::{load_model, save_model, TcssConfig, TcssModel, TcssTrainer, CHECKPOINT_FILE};
use tcss::data::io::{load_dataset, load_dataset_lenient, save_dataset};
use tcss::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  tcss generate  --preset <gowalla|yelp|foursquare|gmu-5k> --out <stem> [--no-preprocess]
  tcss train     (--data <stem> | --synth <preset>) [--model <file>]
                 [--epochs N] [--rank R] [--lambda L] [--seed S]
                 [--loss whole|naive|negsamp] [--init spectral|random|onehot]
                 [--granularity month|week|hour] [--threads T]
                 [--workers N] [--worker-threads T] [--tail-shard] [--no-overlap]
                 [--checkpoint-dir <dir>] [--checkpoint-every N] [--resume] [--lenient]
  tcss recommend --data <stem> --model <file> --user U --month M [--top N]
  tcss recommend-batch --data <stem> --model <file> --requests <U:M,U:M,...> [--top N]
  tcss evaluate  --data <stem> --model <file> [--test-fraction F]
  tcss export-snapshot --model <file> --out <file.tcsssnap> [--quant f32|i16]
  tcss serve     --data <stem> (--model <file> | --snapshot <file.tcsssnap>)
                 [--addr A] [--threads N] [--queue-depth D]
                 [--deadline-ms D] [--idle-timeout-ms I] [--drain-timeout-ms T]
                 [--maintenance-ms M]
  tcss query     --addr <host:port> --user U --month M [--top N]
                 [--timeout-ms T] [--retries N]

<stem> names the CSV triplet <stem>.pois.csv / .checkins.csv / .edges.csv.

serving:
  tcss serve binds a wire-protocol server (default 127.0.0.1:0, i.e. an
  OS-assigned port printed on startup) and runs until SIGINT/SIGTERM.
  --snapshot serves from a compact quantized snapshot (written by
  tcss export-snapshot) scored straight out of an mmap — O(1) cold start
  and a fraction of the f64 memory, within the documented quantization
  error budget. --threads sets worker readiness loops (default 2);
  --queue-depth bounds admitted in-flight requests (default 1024) —
  beyond it, requests are answered with a typed Overloaded response
  instead of queueing.
  --deadline-ms answers requests that waited longer than D before scoring
  with a typed DeadlineExceeded error; --idle-timeout-ms reaps
  connections silent for I ms; --maintenance-ms sets the periodic
  stale-cache reap interval (default 30000; 0 disables). On
  SIGINT/SIGTERM the server drains gracefully — stops accepting,
  finishes in-flight batches, flushes queued responses — force-closing
  stragglers after --drain-timeout-ms (default 5000). tcss query sends
  one recommendation request to a running server; --timeout-ms bounds
  each socket read (default 10000) and --retries retries
  Overloaded/transient failures with deterministic capped exponential
  backoff (default 0).

distributed training:
  tcss train --workers N shards each epoch across N worker processes
  (this executable re-invoked with a hidden dist-worker subcommand over a
  Unix socket); the trained model is bit-identical to the single-process
  run at any worker count. --worker-threads sets threads per worker
  (default 1). --tail-shard moves the optimizer tail to the workers
  (owner-computes Adam over contiguous factor-row ranges) — same bits,
  shorter coordinator critical path; --no-overlap additionally serialises
  the coordinator's Gram/Hausdorff tail after the delta relay instead of
  overlapping it with worker compute (a latency knob for measurement,
  identical bits; requires --tail-shard). Checkpoints stay
  coordinator-owned and worker-count-independent, so the run survives
  the loss of any single worker and checkpoints cross modes freely. The
  whole flag combination is validated up front — e.g. --workers 0, or a
  --checkpoint-every beyond --epochs when workers are set, is a typed
  error before anything spawns.

fault tolerance:
  --checkpoint-dir <dir>  write a rolling checkpoint to <dir>/checkpoint.tcssck
  --checkpoint-every N    checkpoint cadence in epochs (default 25)
  --resume                continue from <dir>/checkpoint.tcssck (needs --checkpoint-dir)
  --lenient               skip (and count) malformed check-in/edge CSV rows";

/// Pull `--flag value` out of the argument list; `None` when absent.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn req<'a>(args: &'a [String], flag: &str) -> Result<&'a str, String> {
    opt(args, flag).ok_or_else(|| format!("missing required {flag}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {what}: {s:?}"))
}

fn has(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("recommend") => cmd_recommend(&args[1..]),
        Some("recommend-batch") => cmd_recommend_batch(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("export-snapshot") => cmd_export_snapshot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        // Hidden: the worker role of `train --workers N`. Spawned by the
        // coordinator, never by hand.
        Some("dist-worker") => cmd_dist_worker(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load(stem: &str) -> Result<Dataset, String> {
    load_with_mode(stem, false)
}

fn load_with_mode(stem: &str, lenient: bool) -> Result<Dataset, String> {
    let name = Path::new(stem)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("dataset");
    if lenient {
        let (data, report) = load_dataset_lenient(name, Path::new(stem))
            .map_err(|e| format!("loading dataset {stem:?}: {e}"))?;
        if report.skipped_checkins + report.skipped_edges > 0 {
            eprintln!(
                "warning: skipped {} malformed check-in row(s) and {} malformed edge row(s)",
                report.skipped_checkins, report.skipped_edges
            );
        }
        Ok(data)
    } else {
        load_dataset(name, Path::new(stem)).map_err(|e| format!("loading dataset {stem:?}: {e}"))
    }
}

fn parse_preset(name: &str) -> Result<SynthPreset, String> {
    match name.to_ascii_lowercase().as_str() {
        "gowalla" => Ok(SynthPreset::Gowalla),
        "yelp" => Ok(SynthPreset::Yelp),
        "foursquare" => Ok(SynthPreset::Foursquare),
        "gmu-5k" | "gmu5k" | "gmu" => Ok(SynthPreset::Gmu5k),
        other => Err(format!("unknown preset {other:?}")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let preset = parse_preset(req(args, "--preset")?)?;
    let out = PathBuf::from(req(args, "--out")?);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        }
    }
    let mut data = preset.generate();
    if !has(args, "--no-preprocess") {
        data = preprocess(&data, &PreprocessConfig::default());
    }
    save_dataset(&data, &out).map_err(|e| format!("writing dataset: {e}"))?;
    println!("{}", data.summary(Granularity::Month));
    println!("wrote {}.{{pois,checkins,edges}}.csv", out.display());
    Ok(())
}

fn training_config(args: &[String]) -> Result<TcssConfig, String> {
    let mut cfg = TcssConfig::default();
    if let Some(v) = opt(args, "--epochs") {
        cfg.epochs = parse(v, "--epochs")?;
    }
    if let Some(v) = opt(args, "--rank") {
        cfg.rank = parse(v, "--rank")?;
    }
    if let Some(v) = opt(args, "--lambda") {
        cfg.lambda = parse(v, "--lambda")?;
        if cfg.lambda == 0.0 {
            cfg.hausdorff = tcss::core::HausdorffVariant::None;
        }
    }
    if let Some(v) = opt(args, "--seed") {
        cfg.seed = parse(v, "--seed")?;
    }
    if let Some(v) = opt(args, "--loss") {
        cfg.loss = match v {
            "whole" => LossStrategy::WholeDataRewritten,
            "naive" => LossStrategy::WholeDataNaive,
            "negsamp" => LossStrategy::NegativeSampling,
            other => return Err(format!("unknown loss strategy {other:?}")),
        };
    }
    if let Some(v) = opt(args, "--init") {
        cfg.init = match v {
            "spectral" => InitMethod::Spectral,
            "random" => InitMethod::Random,
            "onehot" => InitMethod::OneHot,
            other => return Err(format!("unknown init method {other:?}")),
        };
    }
    if let Some(v) = opt(args, "--threads") {
        cfg.num_threads = Some(parse(v, "--threads")?);
    }
    if let Some(v) = opt(args, "--workers") {
        cfg.workers = Some(parse(v, "--workers")?);
    }
    if let Some(v) = opt(args, "--checkpoint-dir") {
        cfg.checkpoint_dir = Some(PathBuf::from(v));
    }
    if let Some(v) = opt(args, "--checkpoint-every") {
        cfg.checkpoint_every = parse(v, "--checkpoint-every")?;
    }
    if has(args, "--resume") {
        let dir = cfg
            .checkpoint_dir
            .as_ref()
            .ok_or("--resume requires --checkpoint-dir")?;
        cfg.resume_from = Some(dir.join(CHECKPOINT_FILE));
    }
    // One cross-field validation pass owns every flag-interaction rule
    // (e.g. --workers 0, or --checkpoint-every beyond --epochs when
    // workers are set) — a bad combination is a typed error before any
    // data is loaded or any process spawned.
    cfg.validate()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(cfg)
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let cfg = training_config(args)?;
    let granularity = match opt(args, "--granularity") {
        Some("month") | None => Granularity::Month,
        Some("week") => Granularity::Week,
        Some("hour") => Granularity::Hour,
        Some(other) => return Err(format!("unknown granularity {other:?}")),
    };
    let data = match (opt(args, "--data"), opt(args, "--synth")) {
        (Some(stem), None) => load_with_mode(stem, has(args, "--lenient"))?,
        (None, Some(preset)) => parse_preset(preset)?.generate(),
        (Some(_), Some(_)) => return Err("--data and --synth are mutually exclusive".into()),
        (None, None) => return Err("train needs --data <stem> or --synth <preset>".into()),
    };
    let model_path = opt(args, "--model").map(PathBuf::from);
    let epochs = cfg.epochs;
    let lambda = cfg.lambda;
    let workers = cfg.workers;
    println!("{}", data.summary(granularity));
    let trainer = TcssTrainer::new(&data, &data.checkins, granularity, cfg);
    let t0 = std::time::Instant::now();
    let on_epoch = |ctx: tcss::core::TrainContext| {
        let loss = lambda * ctx.l1 + ctx.l2;
        if ctx.epoch == 0 || (ctx.epoch + 1).is_multiple_of(50) || ctx.epoch + 1 == epochs {
            println!("epoch {:>4}: loss {loss:.2}", ctx.epoch + 1);
        }
    };
    if workers.is_none() && (has(args, "--tail-shard") || has(args, "--no-overlap")) {
        return Err("--tail-shard/--no-overlap require --workers".into());
    }
    let report = match workers {
        None => trainer
            .train_with_checkpoints(on_epoch)
            .map_err(|e| format!("training failed: {e}"))?,
        Some(n) => {
            // The workers are this same executable, re-invoked with the
            // hidden dist-worker subcommand.
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot locate own executable: {e}"))?;
            let worker_threads = match opt(args, "--worker-threads") {
                Some(v) => Some(parse(v, "--worker-threads")?),
                None => None,
            };
            let tail_shard = has(args, "--tail-shard");
            if has(args, "--no-overlap") && !tail_shard {
                return Err("--no-overlap requires --tail-shard".into());
            }
            let dist = tcss::core::dist::DistConfig {
                worker_threads,
                worker_args: vec!["dist-worker".into()],
                tail_shard,
                overlap: !has(args, "--no-overlap"),
                ..tcss::core::dist::DistConfig::new(n, exe)
            };
            let dr = trainer
                .train_distributed(&dist, on_epoch)
                .map_err(|e| format!("distributed training failed: {e}"))?;
            println!(
                "distributed across {} worker process(es): {} respawn(s), \
                 {} B sent / {} B received over {} epoch(s)",
                dr.workers, dr.respawns, dr.bytes_sent, dr.bytes_received, dr.epochs_dispatched
            );
            dr.report
        }
    };
    if report.start_epoch > 0 {
        println!("resumed from checkpoint at epoch {}", report.start_epoch);
    }
    if report.rollbacks > 0 {
        println!(
            "divergence watchdog rolled back {} time(s); final learning-rate scale {}",
            report.rollbacks, report.lr_scale
        );
    }
    let model = report.model;
    println!(
        "trained {} parameters in {:.1}s",
        model.num_params(),
        t0.elapsed().as_secs_f64()
    );
    match model_path {
        Some(path) => {
            save_model(&model, &path).map_err(|e| format!("saving model: {e}"))?;
            println!("model written to {}", path.display());
        }
        None => println!("no --model given; trained model discarded"),
    }
    Ok(())
}

fn cmd_dist_worker(args: &[String]) -> Result<(), String> {
    let socket = PathBuf::from(req(args, "--socket")?);
    let worker: u32 = parse(req(args, "--worker")?, "--worker")?;
    tcss::core::dist::run_worker(&socket, worker).map_err(|e| format!("dist-worker {worker}: {e}"))
}

fn load_model_checked(path: &str, data: &Dataset) -> Result<TcssModel, String> {
    let model = load_model(Path::new(path)).map_err(|e| format!("loading model: {e}"))?;
    let (i, j, _) = model.dims();
    if i != data.n_users || j != data.n_pois() {
        return Err(format!(
            "model was trained on {i} users × {j} POIs but the dataset has {} × {}",
            data.n_users,
            data.n_pois()
        ));
    }
    Ok(model)
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let data = load(req(args, "--data")?)?;
    let model = load_model_checked(req(args, "--model")?, &data)?;
    let user: usize = parse(req(args, "--user")?, "--user")?;
    let month: usize = parse(req(args, "--month")?, "--month")?;
    let top: usize = match opt(args, "--top") {
        Some(v) => parse(v, "--top")?,
        None => 10,
    };
    if user >= data.n_users {
        return Err(format!("user {user} out of range (0..{})", data.n_users));
    }
    if month >= 12 {
        return Err(format!("month {month} out of range (0..12)"));
    }
    println!("top-{top} POIs for user {user} in month {month}:");
    for (rank, (poi, score)) in model.recommend(user, month, top).into_iter().enumerate() {
        let p = &data.pois[poi];
        println!(
            "{:>3}. poi {poi:>5}  [{}]  ({:>9.4}, {:>8.4})  score {score:.4}",
            rank + 1,
            p.category.label(),
            p.location.lon,
            p.location.lat
        );
    }
    Ok(())
}

/// `--requests 7:5,3:1,7:5` → `[{user 7, month 5}, {user 3, month 1}, ...]`.
fn parse_requests(spec: &str) -> Result<Vec<ScoreRequest>, String> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (u, m) = part
                .split_once(':')
                .ok_or_else(|| format!("bad request {part:?}: expected <user>:<month>"))?;
            Ok(ScoreRequest {
                user: parse(u, "request user")?,
                time: parse(m, "request month")?,
            })
        })
        .collect()
}

fn cmd_recommend_batch(args: &[String]) -> Result<(), String> {
    let data = load(req(args, "--data")?)?;
    let model = load_model_checked(req(args, "--model")?, &data)?;
    let requests = parse_requests(req(args, "--requests")?)?;
    if requests.is_empty() {
        return Err("--requests needs at least one <user>:<month> pair".into());
    }
    let top: usize = match opt(args, "--top") {
        Some(v) => parse(v, "--top")?,
        None => 10,
    };
    let engine = ServingEngine::new(model);
    let results = engine
        .recommend_batch(&requests, top)
        .map_err(|e| format!("scoring batch: {e}"))?;
    for (q, ranked) in requests.iter().zip(&results) {
        println!("user {} month {}:", q.user, q.time);
        for (rank, (poi, score)) in ranked.iter().enumerate() {
            println!(
                "{:>3}. poi {poi:>5}  [{}]  score {score:.4}",
                rank + 1,
                data.pois[*poi].category.label()
            );
        }
    }
    let m = engine.metrics();
    let stats = engine.cache_stats();
    println!(
        "served {} request(s) in {} batch(es) under model version {}",
        m.requests,
        m.batches,
        engine.version()
    );
    println!(
        "caches: {} weight / {} top-n entries; weight hits {} misses {}, top-n hits {} misses {}",
        stats.weight_entries,
        stats.topn_entries,
        m.weight_hits,
        m.weight_misses,
        m.topn_hits,
        m.topn_misses
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Signal handling for `tcss serve` — declared by hand (std already links
// libc; same posture as the serving crate's `poll` declaration). The
// handler only flips an atomic; the drain itself runs on the main thread.

static STOP_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn request_stop(_signum: std::ffi::c_int) {
    STOP_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

fn install_stop_handlers() {
    const SIGINT: std::ffi::c_int = 2;
    const SIGTERM: std::ffi::c_int = 15;
    extern "C" {
        fn signal(signum: std::ffi::c_int, handler: usize) -> usize;
    }
    // SAFETY: request_stop is async-signal-safe (one atomic store) and
    // has the handler ABI signal(2) expects.
    unsafe {
        let handler = request_stop as extern "C" fn(std::ffi::c_int) as *const () as usize;
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn cmd_export_snapshot(args: &[String]) -> Result<(), String> {
    use tcss::serve::snapshot::{write_snapshot, SnapshotModel};
    use tcss::serve::QuantMode;

    let model_path = req(args, "--model")?;
    let out = PathBuf::from(req(args, "--out")?);
    let mode = match opt(args, "--quant") {
        Some(v) => {
            QuantMode::parse(v).ok_or_else(|| format!("--quant must be f32 or i16, got {v:?}"))?
        }
        None => QuantMode::F32,
    };
    let model = load_model(Path::new(model_path)).map_err(|e| format!("loading model: {e}"))?;
    write_snapshot(&model, mode, &out).map_err(|e| format!("writing snapshot: {e}"))?;
    // Reopen with full verification so the operator knows the bytes on
    // disk load cleanly, not just that the write returned.
    let snap = SnapshotModel::open(&out).map_err(|e| format!("verifying snapshot: {e}"))?;
    let (i, j, k) = snap.dims();
    let f64_bytes = model.num_params() * 8;
    println!(
        "wrote {} ({mode} factors): {i} users × {j} POIs × {k} slots, rank {}",
        out.display(),
        snap.rank()
    );
    println!(
        "{} payload bytes vs {} bytes of f64 factors in memory ({:.1}%); \
         {:.1} bytes/user across all factors",
        snap.payload_bytes(),
        f64_bytes,
        100.0 * snap.payload_bytes() as f64 / f64_bytes as f64,
        snap.payload_bytes() as f64 / i as f64
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let data = load(req(args, "--data")?)?;
    let mut cfg = tcss::serve::net::ServerConfig::default();
    if let Some(v) = opt(args, "--addr") {
        cfg.addr = parse(v, "--addr")?;
    }
    if let Some(v) = opt(args, "--threads") {
        cfg.workers = parse(v, "--threads")?;
    }
    if let Some(v) = opt(args, "--queue-depth") {
        cfg.queue_depth = parse(v, "--queue-depth")?;
    }
    if let Some(v) = opt(args, "--deadline-ms") {
        cfg.request_deadline = Some(std::time::Duration::from_millis(parse(v, "--deadline-ms")?));
    }
    if let Some(v) = opt(args, "--idle-timeout-ms") {
        cfg.idle_timeout = Some(std::time::Duration::from_millis(parse(
            v,
            "--idle-timeout-ms",
        )?));
    }
    if let Some(v) = opt(args, "--maintenance-ms") {
        let ms: u64 = parse(v, "--maintenance-ms")?;
        cfg.maintenance_interval = if ms == 0 {
            None
        } else {
            Some(std::time::Duration::from_millis(ms))
        };
    }
    let drain_timeout = std::time::Duration::from_millis(match opt(args, "--drain-timeout-ms") {
        Some(v) => parse(v, "--drain-timeout-ms")?,
        None => 5000u64,
    });

    let (engine, source) = if let Some(snap_path) = opt(args, "--snapshot") {
        let snap = tcss::serve::SnapshotModel::open(Path::new(snap_path))
            .map_err(|e| format!("opening snapshot: {e}"))?;
        let (i, j, _) = snap.dims();
        if i != data.n_users || j != data.n_pois() {
            return Err(format!(
                "snapshot holds {i} users × {j} POIs but the dataset has {} × {}",
                data.n_users,
                data.n_pois()
            ));
        }
        let mode = snap.mode();
        (
            std::sync::Arc::new(ServingEngine::new(snap)),
            format!("compact {mode} snapshot {snap_path}"),
        )
    } else {
        let model = load_model_checked(req(args, "--model")?, &data)?;
        (
            std::sync::Arc::new(ServingEngine::new(model)),
            "f64 model".to_string(),
        )
    };
    let (i, j, k) = engine.snapshot().model.dims();
    let mut handle = tcss::serve::net::NetServer::start(std::sync::Arc::clone(&engine), cfg)
        .map_err(|e| format!("starting server: {e}"))?;
    println!(
        "serving {i} users × {j} POIs × {k} slots ({source}) on {}",
        handle.addr()
    );
    println!("listening; Ctrl-C (or SIGTERM) drains and stops");
    install_stop_handlers();
    while !STOP_REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!(
        "signal received; draining (timeout {} ms)...",
        drain_timeout.as_millis()
    );
    let clean = handle.drain(drain_timeout);
    let m = handle.metrics();
    println!(
        "drained {}: {} requests served ({} ok, {} shed, {} errors), {} deadline misses, \
         {} panics isolated, {} idle reaps",
        if clean { "cleanly" } else { "with force-close" },
        m.requests,
        m.ok,
        m.overloaded,
        m.errors,
        m.deadline_exceeded,
        m.panics,
        m.reaped_idle
    );
    // Warm-path health next to the resilience block: cache hit rates and
    // what the maintenance tick reclaimed, without needing a bench run.
    let sm = engine.metrics();
    let stats = engine.cache_stats();
    println!(
        "caches: weight hits {} misses {} ({:.1}% hit), top-n hits {} misses {} ({:.1}% hit); \
         {} weight / {} top-n entries live, {} stale entries reaped",
        sm.weight_hits,
        sm.weight_misses,
        100.0 * sm.weight_hit_rate(),
        sm.topn_hits,
        sm.topn_misses,
        100.0 * sm.topn_hit_rate(),
        stats.weight_entries,
        stats.topn_entries,
        sm.reaped_stale
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let addr: std::net::SocketAddr = parse(req(args, "--addr")?, "--addr")?;
    let user: u64 = parse(req(args, "--user")?, "--user")?;
    let month: u64 = parse(req(args, "--month")?, "--month")?;
    let top: u32 = match opt(args, "--top") {
        Some(v) => parse(v, "--top")?,
        None => 10,
    };
    let mut ccfg = tcss::serve::net::ClientConfig::default();
    if let Some(v) = opt(args, "--timeout-ms") {
        ccfg.read_timeout = std::time::Duration::from_millis(parse(v, "--timeout-ms")?);
    }
    if let Some(v) = opt(args, "--retries") {
        ccfg.retries = parse(v, "--retries")?;
    }
    let mut client = tcss::serve::net::NetClient::connect_with_config(addr, ccfg)
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let resp = client
        .recommend_with_retry(user, month, top)
        .map_err(|e| format!("query failed: {e}"))?;
    let stats = client.stats();
    if stats.retries > 0 {
        eprintln!(
            "note: {} retry attempt(s), {} reconnect(s)",
            stats.retries, stats.reconnects
        );
    }
    match resp.body {
        tcss::serve::net::ResponseBody::Ranking { version, items } => {
            println!("top-{top} POIs for user {user} in month {month} (model v{version}):");
            for (rank, (poi, score)) in items.into_iter().enumerate() {
                println!("{:>3}. poi {poi:>5}  score {score:.4}", rank + 1);
            }
            Ok(())
        }
        tcss::serve::net::ResponseBody::Overloaded { queue_depth } => Err(format!(
            "server overloaded (admission queue depth {queue_depth}); retry later"
        )),
        tcss::serve::net::ResponseBody::Error { code, message } => {
            Err(format!("server error ({code:?}): {message}"))
        }
        other => Err(format!("unexpected response: {other:?}")),
    }
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let data = load(req(args, "--data")?)?;
    let model = load_model_checked(req(args, "--model")?, &data)?;
    let fraction: f64 = match opt(args, "--test-fraction") {
        Some(v) => parse(v, "--test-fraction")?,
        None => 0.2,
    };
    if !(0.0..1.0).contains(&fraction) {
        return Err("--test-fraction must be in [0, 1)".into());
    }
    let split = train_test_split(&data.checkins, data.n_users, 1.0 - fraction, 42);
    let m = evaluate_ranking(
        &split.test,
        data.n_pois(),
        &EvalConfig::default(),
        |i, j, k| model.predict(i, j, k),
    );
    println!(
        "Hit@10 = {:.4}, MRR = {:.4} over {} held-out interactions",
        m.hit_at_k, m.mrr, m.n
    );
    println!(
        "(note: if the model was trained on the full dataset, this measures \
         reconstruction; train on a split for generalization numbers)"
    );
    Ok(())
}
