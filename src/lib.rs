//! # tcss
//!
//! A from-scratch Rust reproduction of **TCSS** — *Time-sensitive POI
//! Recommendation by Tensor Completion with Side Information* (Hui, Yan,
//! Chen, Ku; ICDE 2022) — including every substrate the system depends on
//! and all the baselines the paper evaluates against.
//!
//! This crate is the facade: it re-exports the workspace's crates and hosts
//! the runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). Start with:
//!
//! ```no_run
//! use tcss::prelude::*;
//!
//! // A synthetic LBSN mirroring the paper's Gowalla setup.
//! let data = SynthPreset::Gowalla.generate();
//! let data = preprocess(&data, &PreprocessConfig::default());
//! let split = train_test_split(&data.checkins, data.n_users, 0.8, 42);
//!
//! // Train TCSS with the paper's configuration.
//! let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, TcssConfig::default());
//! let model = trainer.train(|_, _| {});
//!
//! // Where should user 7 go in June?
//! for (poi, score) in model.recommend(7, 5, 10) {
//!     println!("POI {poi}: {score:.3}");
//! }
//! ```
//!
//! See `DESIGN.md` for the system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `crates/bench` for the binaries that
//! regenerate every table and figure of the paper.

pub use tcss_autodiff as autodiff;
pub use tcss_baselines as baselines;
pub use tcss_core as core;
pub use tcss_data as data;
pub use tcss_eval as eval;
pub use tcss_geo as geo;
pub use tcss_graph as graph;
pub use tcss_linalg as linalg;
pub use tcss_serve as serve;
pub use tcss_sparse as sparse;

/// The most common imports in one place.
pub mod prelude {
    pub use tcss_core::{
        HausdorffVariant, InitMethod, LossStrategy, TcssConfig, TcssModel, TcssTrainer,
    };
    pub use tcss_data::{
        preprocess, train_test_split, Category, CheckIn, Dataset, Granularity, Poi,
        PreprocessConfig, Split, SynthPreset,
    };
    pub use tcss_eval::{evaluate_ranking, EvalConfig, RankingMetrics};
    pub use tcss_geo::GeoPoint;
    pub use tcss_graph::SocialGraph;
    pub use tcss_serve::{ScoreRequest, ServingEngine};
    pub use tcss_sparse::SparseTensor3;
}
