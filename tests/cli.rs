//! End-to-end tests of the `tcss` CLI binary: the full
//! generate → train → recommend → evaluate loop through the executable.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tcss"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tcss_cli_tests").join(name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn full_cli_roundtrip() {
    let dir = workdir("roundtrip");
    let stem = dir.join("gmu");
    let model = dir.join("model.tcss");

    // generate
    let out = bin()
        .args(["generate", "--preset", "gmu-5k", "--out"])
        .arg(&stem)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stem
        .with_extension("")
        .parent()
        .unwrap()
        .join("gmu.pois.csv")
        .exists());

    // train (few epochs; CLI paths, not model quality, are under test)
    let out = bin()
        .args(["train", "--epochs", "5", "--lambda", "0", "--data"])
        .arg(&stem)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("model written"), "{stdout}");

    // recommend
    let out = bin()
        .args([
            "recommend",
            "--user",
            "0",
            "--month",
            "5",
            "--top",
            "3",
            "--data",
        ])
        .arg(&stem)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run recommend");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("poi ").count(), 3, "{stdout}");

    // recommend-batch: three requests, one a duplicate — the duplicate's
    // weight vector must come from the serving cache.
    let out = bin()
        .args([
            "recommend-batch",
            "--requests",
            "0:5,1:2,0:5",
            "--top",
            "3",
            "--data",
        ])
        .arg(&stem)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run recommend-batch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("poi ").count(), 9, "{stdout}");
    assert!(stdout.contains("user 0 month 5:"), "{stdout}");
    assert!(stdout.contains("user 1 month 2:"), "{stdout}");
    assert!(
        stdout.contains("served 3 request(s) in 1 batch(es) under model version 1"),
        "{stdout}"
    );
    assert!(stdout.contains("weight hits 1 misses 2"), "{stdout}");

    // recommend-batch must match per-request recommend for the same query.
    let single = bin()
        .args([
            "recommend",
            "--user",
            "0",
            "--month",
            "5",
            "--top",
            "3",
            "--data",
        ])
        .arg(&stem)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run recommend");
    let single_stdout = String::from_utf8_lossy(&single.stdout);
    for line in single_stdout.lines().filter(|l| l.contains("score ")) {
        let score = line.rsplit("score ").next().unwrap();
        assert!(stdout.contains(score), "batch output missing {score:?}");
    }

    // malformed request specs are rejected before any scoring
    let out = bin()
        .args(["recommend-batch", "--requests", "0-5", "--data"])
        .arg(&stem)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run recommend-batch");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("expected <user>:<month>"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // evaluate
    let out = bin()
        .args(["evaluate", "--data"])
        .arg(&stem)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run evaluate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Hit@10"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_arguments_fail_with_usage() {
    let out = bin().args(["train"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--data"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_subcommand_fails() {
    let out = bin().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn help_prints_usage() {
    let out = bin().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}

#[test]
fn model_dataset_mismatch_is_detected() {
    let dir = workdir("mismatch");
    let gmu = dir.join("gmu");
    let yelp = dir.join("yelp");
    let model = dir.join("model.tcss");
    assert!(bin()
        .args(["generate", "--preset", "gmu-5k", "--out"])
        .arg(&gmu)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["generate", "--preset", "yelp", "--out"])
        .arg(&yelp)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["train", "--epochs", "2", "--lambda", "0", "--data"])
        .arg(&gmu)
        .arg("--model")
        .arg(&model)
        .status()
        .unwrap()
        .success());
    // Evaluating the GMU model against the Yelp dataset must be rejected.
    let out = bin()
        .args(["evaluate", "--data"])
        .arg(&yelp)
        .arg("--model")
        .arg(&model)
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("trained on"));
    std::fs::remove_dir_all(&dir).ok();
}
