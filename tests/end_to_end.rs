//! End-to-end integration tests: the full pipeline from synthetic data
//! generation through preprocessing, training, recommendation and
//! evaluation — the path every example and experiment binary takes.

use tcss::prelude::*;

/// A small, fast configuration shared by these tests.
fn fast_cfg() -> TcssConfig {
    TcssConfig {
        epochs: 60,
        hausdorff_every: 5,
        ..Default::default()
    }
}

fn gmu() -> (Dataset, Split) {
    let raw = SynthPreset::Gmu5k.generate();
    let data = preprocess(&raw, &PreprocessConfig::default());
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 1);
    (data, split)
}

#[test]
fn full_pipeline_beats_chance_decisively() {
    let (data, split) = gmu();
    let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, fast_cfg());
    let model = trainer.train(|_, _| {});
    let metrics = evaluate_ranking(
        &split.test,
        data.n_pois(),
        &EvalConfig::default(),
        |i, j, k| model.predict(i, j, k),
    );
    // Chance level for Hit@10 with 100 negatives is ~0.10.
    assert!(
        metrics.hit_at_k > 0.45,
        "TCSS Hit@10 {} too close to chance",
        metrics.hit_at_k
    );
    assert!(metrics.mrr > 0.2, "TCSS MRR {} too weak", metrics.mrr);
}

#[test]
fn recommendations_are_ranked_and_novel_capable() {
    let (data, split) = gmu();
    let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, fast_cfg());
    let model = trainer.train(|_, _| {});
    let rec = model.recommend(0, 6, 20);
    assert_eq!(rec.len(), 20);
    for w in rec.windows(2) {
        assert!(w[0].1 >= w[1].1, "recommendations not sorted");
    }
    // Distinct POIs.
    let set: std::collections::HashSet<usize> = rec.iter().map(|&(j, _)| j).collect();
    assert_eq!(set.len(), 20);
}

#[test]
fn training_loss_is_monotone_ish() {
    let (data, split) = gmu();
    let trainer = TcssTrainer::new(&data, &split.train, Granularity::Month, fast_cfg());
    let mut losses = Vec::new();
    trainer.train_detailed(|ctx| losses.push(ctx.l2));
    // First quarter average must exceed last quarter average.
    let q = losses.len() / 4;
    let head: f64 = losses[..q].iter().sum::<f64>() / q as f64;
    let tail: f64 = losses[losses.len() - q..].iter().sum::<f64>() / q as f64;
    assert!(tail < head, "loss did not trend down: {head} -> {tail}");
}

#[test]
fn category_slices_train_end_to_end() {
    let raw = SynthPreset::Gmu5k.generate();
    for cat in Category::ALL {
        let sliced = raw.filter_category(cat);
        let data = preprocess(
            &sliced,
            &PreprocessConfig {
                min_checkins: 5,
                ..Default::default()
            },
        );
        if data.n_users < 12 || data.n_pois() < 12 {
            continue; // slice too thin to train rank-10 factors
        }
        let split = train_test_split(&data.checkins, data.n_users, 0.8, 2);
        let trainer = TcssTrainer::new(
            &data,
            &split.train,
            Granularity::Month,
            TcssConfig {
                epochs: 25,
                hausdorff_every: 5,
                ..Default::default()
            },
        );
        let model = trainer.train(|_, _| {});
        assert!(
            model.predict(0, 0, 0).is_finite(),
            "{} slice broke",
            cat.label()
        );
    }
}

#[test]
fn csv_roundtrip_preserves_training_behaviour() {
    let (data, split) = gmu();
    let dir = std::env::temp_dir().join("tcss_e2e_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("ds");
    tcss::data::io::save_dataset(&data, &stem).unwrap();
    let reloaded = tcss::data::io::load_dataset(&data.name, &stem).unwrap();
    // Identical training tensor ⇒ identical deterministic training.
    let cfg = TcssConfig {
        epochs: 10,
        ..Default::default()
    };
    let m1 =
        TcssTrainer::new(&data, &split.train, Granularity::Month, cfg.clone()).train(|_, _| {});
    let m2 = TcssTrainer::new(&reloaded, &split.train, Granularity::Month, cfg).train(|_, _| {});
    for i in (0..data.n_users).step_by(17) {
        for j in (0..data.n_pois()).step_by(13) {
            assert!((m1.predict(i, j, 3) - m2.predict(i, j, 3)).abs() < 1e-12);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_granularities_work() {
    let (data, split) = gmu();
    for g in [Granularity::Month, Granularity::Week, Granularity::Hour] {
        let trainer = TcssTrainer::new(
            &data,
            &split.train,
            g,
            TcssConfig {
                epochs: 15,
                hausdorff_every: 5,
                ..Default::default()
            },
        );
        let model = trainer.train(|_, _| {});
        let metrics = evaluate_ranking(
            &split.test,
            data.n_pois(),
            &EvalConfig {
                granularity: g,
                ..Default::default()
            },
            |i, j, k| model.predict(i, j, k),
        );
        assert!(
            metrics.hit_at_k > 0.15,
            "{} granularity Hit@10 {} at or below chance",
            g.label(),
            metrics.hit_at_k
        );
    }
}
