//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary inputs, not just the hand-picked cases of the unit suites.

use proptest::prelude::*;
use tcss::core::{naive_whole_data_loss, rewritten_loss_and_grad, TcssModel};
use tcss::geo::{average_hausdorff, generalized_mean, DistanceMatrix, GeoPoint};
use tcss::linalg::{qr_thin, solve_linear_system, Matrix};
use tcss::sparse::{CsrMatrix, Mode, ModeGramOp, SparseTensor3};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A small random sparse binary tensor plus its dimensions.
fn tensor_strategy() -> impl Strategy<Value = SparseTensor3> {
    (2usize..6, 2usize..6, 2usize..5).prop_flat_map(|(i, j, k)| {
        let cells = proptest::collection::vec(
            (0..i, 0..j, 0..k).prop_map(|(a, b, c)| (a, b, c, 1.0)),
            1..20,
        );
        cells.prop_map(move |entries| {
            // Duplicates sum; the paper's check-in tensors are binary.
            SparseTensor3::from_entries((i, j, k), entries)
                .expect("in range")
                .binarized()
        })
    })
}

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

fn points_strategy() -> impl Strategy<Value = Vec<GeoPoint>> {
    proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..8).prop_map(|v| {
        v.into_iter()
            .map(|(lon, lat)| GeoPoint::new(lon, lat))
            .collect()
    })
}

// ---------------------------------------------------------------------
// linalg
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QR reconstructs its input and Q is orthonormal, for any matrix.
    #[test]
    fn qr_reconstruction_holds(m in matrix_strategy(5, 3)) {
        let (q, r) = qr_thin(&m).expect("tall matrix");
        let qr = q.matmul(&r).expect("shapes");
        prop_assert!(qr.approx_eq(&m, 1e-8));
        prop_assert!(q.gram().approx_eq(&Matrix::identity(3), 1e-8));
    }

    /// Solving A x = b then multiplying back recovers b (well-conditioned A).
    #[test]
    fn linear_solve_roundtrip(m in matrix_strategy(4, 4), rhs in proptest::collection::vec(-3.0f64..3.0, 4)) {
        // Make A strictly diagonally dominant ⇒ invertible.
        let mut a = m;
        for i in 0..4 {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            *a.get_mut(i, i) += row_sum + 1.0;
        }
        let x = solve_linear_system(&a, &rhs).expect("invertible");
        let back = a.matvec(&x).expect("shape");
        for (b1, b2) in back.iter().zip(rhs.iter()) {
            prop_assert!((b1 - b2).abs() < 1e-8);
        }
    }

    /// Matmul is associative: (AB)C = A(BC).
    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }
}

// ---------------------------------------------------------------------
// sparse
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The matrix-free Gram operator equals the dense off-diagonal Gram
    /// matrix, for every mode of any tensor.
    #[test]
    fn mode_gram_op_equals_dense(t in tensor_strategy()) {
        for mode in Mode::ALL {
            let a = t.matricize_dense(mode);
            let mut g = a.matmul(&a.transpose()).unwrap();
            g.zero_diagonal();
            let op = ModeGramOp::new(&t, mode);
            let n = g.rows();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
            let mut y = vec![0.0; n];
            use tcss::linalg::SymOp;
            op.apply(&x, &mut y);
            let expect = g.matvec(&x).unwrap();
            for (a, b) in y.iter().zip(expect.iter()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// CSR matvec equals dense matvec, duplicates summed.
    #[test]
    fn csr_matvec_matches_dense(
        triples in proptest::collection::vec((0usize..5, 0usize..4, -2.0f64..2.0), 0..15)
    ) {
        let m = CsrMatrix::from_triples(5, 4, triples);
        let x = [0.5, -1.0, 2.0, 0.25];
        let sparse = m.matvec(&x);
        let dense = m.to_dense().matvec(&x).unwrap();
        for (a, b) in sparse.iter().zip(dense.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Tensor density is nnz/(IJK) and binarize forces all values to one.
    #[test]
    fn tensor_density_and_binarize(t in tensor_strategy()) {
        let (i, j, k) = t.dims();
        prop_assert!((t.density() - t.nnz() as f64 / (i * j * k) as f64).abs() < 1e-12);
        let b = t.binarized();
        prop_assert_eq!(b.nnz(), t.nnz());
        prop_assert!(b.entries().iter().all(|e| e.value == 1.0));
    }
}

// ---------------------------------------------------------------------
// geo
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AHD is symmetric, non-negative, and zero exactly on identical sets.
    #[test]
    fn ahd_metric_properties(points in points_strategy()) {
        let d = DistanceMatrix::from_points(&points);
        let n = points.len();
        let s: Vec<usize> = (0..n / 2 + 1).collect();
        let t: Vec<usize> = (n / 2..n).collect();
        let fwd = average_hausdorff(&s, &t, &d);
        let bwd = average_hausdorff(&t, &s, &d);
        prop_assert!((fwd - bwd).abs() < 1e-9);
        prop_assert!(fwd >= 0.0);
        prop_assert!(average_hausdorff(&s, &s, &d).abs() < 1e-12);
    }

    /// The generalized mean with negative exponent lies between the min and
    /// the arithmetic mean.
    #[test]
    fn generalized_mean_bounds(xs in proptest::collection::vec(0.01f64..100.0, 1..10)) {
        let m = generalized_mean(&xs, -1.0, 1e-9);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!(m >= min - 1e-9, "M {m} below min {min}");
        prop_assert!(m <= mean + 1e-9, "M {m} above mean {mean}");
    }

    /// Normalizing a distance matrix preserves ratios and caps at 1.
    #[test]
    fn distance_normalization(points in points_strategy()) {
        let d = DistanceMatrix::from_points(&points);
        let n = d.normalized();
        prop_assert!(n.max_distance() <= 1.0 + 1e-12);
        if d.max_distance() > 0.0 {
            for a in 0..points.len() {
                for b in 0..points.len() {
                    prop_assert!((n.get(a, b) - d.get(a, b) / d.max_distance()).abs() < 1e-12);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// core: Remark 1 as a property over random models and tensors
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eq 15 == Eq 14 + const for arbitrary tensors, factors and weights.
    #[test]
    fn rewritten_loss_equivalence_property(
        t in tensor_strategy(),
        seed in 0u64..1000,
        wp in 0.5f64..1.0,
    ) {
        let wm = 1.0 - wp;
        let dims = t.dims();
        let r = 2.min(dims.0).min(dims.1).min(dims.2);
        let (u1, u2, u3) = tcss::core::random_init(dims, r, seed);
        let model = TcssModel::new(u1, u2, u3);
        let (rewritten, _) = rewritten_loss_and_grad(&model, t.entries(), wp, wm);
        let naive = naive_whole_data_loss(&model, &t, wp, wm);
        let constant = wp * t.nnz() as f64;
        prop_assert!(
            (rewritten + constant - naive).abs() < 1e-8 * naive.abs().max(1.0),
            "rewritten {rewritten} + {constant} != naive {naive}"
        );
    }

    /// The model is exactly linear in h: scaling h scales every prediction.
    #[test]
    fn model_linear_in_h(t in tensor_strategy(), seed in 0u64..1000, scale in 0.1f64..5.0) {
        let dims = t.dims();
        let r = 2.min(dims.0).min(dims.1).min(dims.2);
        let (u1, u2, u3) = tcss::core::random_init(dims, r, seed);
        let mut model = TcssModel::new(u1, u2, u3);
        let before = model.predict(0, 0, 0);
        for h in &mut model.h {
            *h *= scale;
        }
        prop_assert!((model.predict(0, 0, 0) - scale * before).abs() < 1e-9);
    }
}
