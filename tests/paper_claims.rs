//! Integration tests pinning the paper's *testable claims* at small scale.
//! Each test names the claim and the paper location it comes from.

use tcss::core::{
    naive_whole_data_loss, negative_sampling_loss_and_grad, rewritten_loss_and_grad, InitMethod,
    TcssConfig, TcssModel, TcssTrainer,
};
use tcss::prelude::*;

fn setup() -> (Dataset, Split) {
    let raw = SynthPreset::Gmu5k.generate();
    let data = preprocess(&raw, &PreprocessConfig::default());
    let split = train_test_split(&data.checkins, data.n_users, 0.8, 3);
    (data, split)
}

/// Remark 1 (§IV-D): the rewritten loss Eq 15 equals the naive whole-data
/// loss Eq 14 up to the constant `Σ_{Ω₊} w₊ X²`, at *any* parameter value.
#[test]
fn claim_rewritten_loss_equivalence() {
    let (data, split) = setup();
    let trainer = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig {
            init: InitMethod::Random,
            ..Default::default()
        },
    );
    let model = trainer.init_model();
    for (wp, wm) in [(0.99, 0.01), (0.9, 0.1), (0.5, 0.5)] {
        let (rewritten, _) = rewritten_loss_and_grad(&model, trainer.tensor.entries(), wp, wm);
        let naive = naive_whole_data_loss(&model, &trainer.tensor, wp, wm);
        let constant = wp * trainer.tensor.nnz() as f64;
        let rel = ((rewritten + constant - naive) / naive.abs().max(1.0)).abs();
        assert!(
            rel < 1e-10,
            "Eq 15 + const != Eq 14 at weights ({wp},{wm}): rel err {rel}"
        );
    }
}

/// §IV-D complexity claim: the rewritten loss evaluates orders of magnitude
/// faster than the naive loss (O(nnz·r + (I+J+K)r²) vs O(I·J·K·r)).
#[test]
fn claim_rewritten_loss_is_much_faster() {
    let (data, split) = setup();
    let trainer = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig::default(),
    );
    let model = trainer.init_model();
    // Min over repeats: robust to scheduling noise when the whole workspace
    // test suite runs in parallel.
    let min_time = |f: &mut dyn FnMut()| {
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed()
            })
            .min()
            .expect("nonempty")
    };
    let naive_t = min_time(&mut || {
        let _ = naive_whole_data_loss(&model, &trainer.tensor, 0.9, 0.1);
    });
    let rewritten_t = min_time(&mut || {
        let _ = rewritten_loss_and_grad(&model, trainer.tensor.entries(), 0.9, 0.1);
    });
    assert!(
        naive_t > rewritten_t * 5,
        "expected a large speedup, got naive {naive_t:?} vs rewritten {rewritten_t:?}"
    );
}

/// Table II claim: whole-data training beats 1:1 negative sampling.
#[test]
fn claim_whole_data_beats_negative_sampling() {
    let (data, split) = setup();
    let eval = |model: &TcssModel| {
        evaluate_ranking(
            &split.test,
            data.n_pois(),
            &EvalConfig::default(),
            |i, j, k| model.predict(i, j, k),
        )
    };
    let base = TcssConfig {
        epochs: 80,
        hausdorff_every: 5,
        ..Default::default()
    };
    let whole =
        TcssTrainer::new(&data, &split.train, Granularity::Month, base.clone()).train(|_, _| {});
    let sampled = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig {
            loss: tcss::core::LossStrategy::NegativeSampling,
            ..base
        },
    )
    .train(|_, _| {});
    let mw = eval(&whole);
    let ms = eval(&sampled);
    assert!(
        mw.hit_at_k > ms.hit_at_k && mw.mrr > ms.mrr,
        "whole-data ({:.3}/{:.3}) must beat negative sampling ({:.3}/{:.3})",
        mw.hit_at_k,
        mw.mrr,
        ms.hit_at_k,
        ms.mrr
    );
}

/// §IV-A claim: the spectral initialization converges faster than random
/// initialization in the early epochs.
#[test]
fn claim_spectral_init_converges_faster() {
    let (data, split) = setup();
    let early = |init: InitMethod| {
        let cfg = TcssConfig {
            init,
            epochs: 8,
            lambda: 0.0,
            ..Default::default()
        };
        let model = TcssTrainer::new(&data, &split.train, Granularity::Month, cfg).train(|_, _| {});
        evaluate_ranking(
            &split.test,
            data.n_pois(),
            &EvalConfig::default(),
            |i, j, k| model.predict(i, j, k),
        )
        .hit_at_k
    };
    let spectral = early(InitMethod::Spectral);
    let random = early(InitMethod::Random);
    assert!(
        spectral > random,
        "after 8 epochs spectral ({spectral}) should lead random ({random})"
    );
}

/// §IV-D claim: the gradient of the negative-sampling loss is an unbiased
/// but *noisy* estimate — fixed seeds give different gradients, while the
/// whole-data gradient is deterministic.
#[test]
fn claim_negative_sampling_is_stochastic_whole_data_is_not() {
    let (data, split) = setup();
    let trainer = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig::default(),
    );
    let model = trainer.init_model();
    let (l1, _) = negative_sampling_loss_and_grad(&model, &trainer.tensor, 0.9, 0.1, 1);
    let (l2, _) = negative_sampling_loss_and_grad(&model, &trainer.tensor, 0.9, 0.1, 2);
    assert!(
        (l1 - l2).abs() > 1e-9,
        "different seeds must sample differently"
    );
    let (r1, _) = rewritten_loss_and_grad(&model, trainer.tensor.entries(), 0.9, 0.1);
    let (r2, _) = rewritten_loss_and_grad(&model, trainer.tensor.entries(), 0.9, 0.1);
    assert_eq!(r1, r2, "whole-data loss must be deterministic");
}

/// §V-E claim: tensor completion beats time-blind matrix completion on
/// time-sensitive data (the reason the time dimension exists at all).
#[test]
fn claim_tensor_beats_matrix_completion() {
    let (data, split) = setup();
    let tcss = TcssTrainer::new(
        &data,
        &split.train,
        Granularity::Month,
        TcssConfig {
            epochs: 80,
            hausdorff_every: 5,
            ..Default::default()
        },
    )
    .train(|_, _| {});
    let svd = tcss::baselines::PureSvd::fit(&data, &split.train, 10);
    let cfg = EvalConfig::default();
    let mt = evaluate_ranking(&split.test, data.n_pois(), &cfg, |i, j, k| {
        tcss.predict(i, j, k)
    });
    let mm = evaluate_ranking(&split.test, data.n_pois(), &cfg, |i, j, k| {
        svd.score(i, j, k)
    });
    assert!(
        mt.hit_at_k > mm.hit_at_k,
        "TCSS ({:.3}) must beat PureSVD ({:.3})",
        mt.hit_at_k,
        mm.hit_at_k
    );
}
